"""Tests for the command-line interface and plan explanation."""

import io

import pytest

from repro.cli import main


def _run(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture
def guide_files(tmp_path):
    v1 = tmp_path / "v1.xml"
    v1.write_text(
        "<guide><restaurant><name>Napoli</name><price>15</price>"
        "</restaurant></guide>"
    )
    v2 = tmp_path / "v2.xml"
    v2.write_text(
        "<guide><restaurant><name>Napoli</name><price>18</price>"
        "</restaurant></guide>"
    )
    return tmp_path / "db.xml", v1, v2


class TestLifecycle:
    def test_put_update_query(self, guide_files):
        archive, v1, v2 = guide_files
        code, out = _run("put", "-a", str(archive), "guide.com", str(v1),
                         "--ts", "01/01/2001")
        assert code == 0 and "created guide.com" in out
        code, out = _run("update", "-a", str(archive), "guide.com", str(v2),
                         "--ts", "31/01/2001")
        assert code == 0 and "version 2" in out
        code, out = _run(
            "query", "-a", str(archive),
            'SELECT TIME(R), R/price '
            'FROM doc("guide.com")[EVERY]/restaurant R',
        )
        assert code == 0
        assert "01/01/2001" in out and "18" in out

    def test_query_xml_envelope(self, guide_files):
        archive, v1, _v2 = guide_files
        _run("put", "-a", str(archive), "guide.com", str(v1))
        code, out = _run(
            "query", "-a", str(archive), "--xml",
            'SELECT R FROM doc("guide.com")/restaurant R',
        )
        assert code == 0
        assert out.startswith("<results>")

    def test_history_and_ls(self, guide_files):
        archive, v1, v2 = guide_files
        _run("put", "-a", str(archive), "guide.com", str(v1),
             "--ts", "01/01/2001")
        _run("update", "-a", str(archive), "guide.com", str(v2),
             "--ts", "31/01/2001")
        code, out = _run("history", "-a", str(archive), "guide.com")
        assert code == 0
        assert "v1  01/01/2001" in out
        assert "(current)" in out
        code, out = _run("ls", "-a", str(archive))
        assert "guide.com  2 versions  live" in out

    def test_delete(self, guide_files):
        archive, v1, _v2 = guide_files
        _run("put", "-a", str(archive), "guide.com", str(v1),
             "--ts", "01/01/2001")
        code, out = _run("delete", "-a", str(archive), "guide.com",
                         "--ts", "05/02/2001")
        assert code == 0
        code, out = _run("ls", "-a", str(archive))
        assert "deleted 05/02/2001" in out

    def test_stats(self, guide_files):
        archive, v1, v2 = guide_files
        _run("put", "-a", str(archive), "guide.com", str(v1),
             "--ts", "01/01/2001")
        _run("update", "-a", str(archive), "guide.com", str(v2),
             "--ts", "31/01/2001")
        code, out = _run("stats", "-a", str(archive))
        assert code == 0
        assert "reconstruct policy: cost" in out
        assert "delta_reads:" in out
        assert "hit_rate:" in out
        assert "delta_reads_saved:" in out

    def test_stats_exercise_scans_history(self, guide_files):
        archive, v1, v2 = guide_files
        _run("put", "-a", str(archive), "guide.com", str(v1),
             "--ts", "01/01/2001")
        _run("update", "-a", str(archive), "guide.com", str(v2),
             "--ts", "31/01/2001")
        code, out = _run("stats", "-a", str(archive),
                         "--exercise", "guide.com")
        assert code == 0
        assert "range_scans: 1" in out
        # The sweep chose an anchor and applied at least one chain.
        assert "anchor[" in out

    def test_stats_exercise_unknown_document(self, guide_files):
        archive, v1, _v2 = guide_files
        _run("put", "-a", str(archive), "guide.com", str(v1))
        code, out = _run("stats", "-a", str(archive),
                         "--exercise", "ghost.com")
        assert code == 1
        assert "error:" in out


class TestErrors:
    def test_missing_archive(self, tmp_path):
        code, out = _run(
            "query", "-a", str(tmp_path / "nope.xml"),
            'SELECT R FROM doc("x") R',
        )
        assert code == 1
        assert "does not exist" in out

    def test_bad_query(self, guide_files):
        archive, v1, _v2 = guide_files
        _run("put", "-a", str(archive), "guide.com", str(v1))
        code, out = _run("query", "-a", str(archive), "SELECT FROM nope")
        assert code == 1
        assert "error:" in out

    def test_unknown_document(self, guide_files):
        archive, v1, _v2 = guide_files
        _run("put", "-a", str(archive), "guide.com", str(v1))
        code, out = _run("history", "-a", str(archive), "ghost.com")
        assert code == 1


class TestDemo:
    def test_demo_runs_paper_queries(self):
        code, out = _run("demo")
        assert code == 0
        assert "Q1" in out and "Q2" in out and "Q3" in out
        assert "Akropolis" in out


class TestRecover:
    def _durable_db(self, tmp_path):
        from repro import TemporalXMLDatabase

        db = TemporalXMLDatabase.open(tmp_path / "db", durability="journal")
        db.put(
            "guide.com",
            "<guide><restaurant><name>Napoli</name><price>15</price>"
            "</restaurant></guide>",
        )
        db.checkpoint()
        db.update(
            "guide.com",
            "<guide><restaurant><name>Napoli</name><price>18</price>"
            "</restaurant></guide>",
        )
        db.close()
        return tmp_path / "db"

    def test_recover_reports_and_checkpoints(self, tmp_path):
        directory = self._durable_db(tmp_path)
        code, out = _run("recover", "-d", str(directory))
        assert code == 0
        assert "recovered 1 document(s)" in out
        assert "checkpoint used: checkpoint" in out
        assert "journal records:" in out
        # The journal tail was folded into a fresh checkpoint and rolled.
        code, out = _run("recover", "-d", str(directory))
        assert code == 0
        assert "0 replayed" in out

    def test_recover_truncates_torn_tail(self, tmp_path):
        directory = self._durable_db(tmp_path)
        journal = directory / "journal.bin"
        data = journal.read_bytes()
        journal.write_bytes(data[:-5])
        code, out = _run(
            "recover", "-d", str(directory), "--no-checkpoint"
        )
        assert code == 0
        assert "torn tail" in out

    def test_recover_missing_directory(self, tmp_path):
        code, out = _run("recover", "-d", str(tmp_path / "fresh"))
        assert code == 0
        assert "recovered 0 document(s)" in out


class TestExplain:
    def test_cli_explain(self, guide_files):
        archive, v1, _v2 = guide_files
        _run("put", "-a", str(archive), "guide.com", str(v1))
        code, out = _run(
            "explain", "-a", str(archive),
            'SELECT R FROM doc("guide.com")/restaurant R',
        )
        assert code == 0
        assert "strategy: index" in out

    def test_engine_explain_shapes(self, figure1_db):
        plans = figure1_db.engine.explain(
            'SELECT R FROM doc("guide.com")[EVERY]/restaurant R '
            'WHERE R/name = "Napoli" AND TIME(R) >= 15/01/2001'
        )
        info = plans[0]
        assert info["strategy"] == "index"
        assert info["operator"] == "TPatternScanAll"
        assert info["pattern"] == ["restaurant", "name", "napoli"]
        assert info["pushdown"] == "Napoli"
        assert "15/01/2001" in info["window"]

    def test_explain_navigate_reasons(self, figure1_db):
        plans = figure1_db.engine.explain(
            'SELECT D FROM doc("guide.com") D'
        )
        assert plans[0]["strategy"] == "navigate"
        assert "no path" in plans[0]["reason"]
        plans = figure1_db.engine.explain(
            'SELECT R FROM doc("guide.com")/*/name R'
        )
        assert plans[0]["strategy"] == "navigate"
        assert "wildcard" in plans[0]["reason"]

    def test_explain_empty_window(self, figure1_db):
        plans = figure1_db.engine.explain(
            'SELECT R FROM doc("guide.com")[EVERY]/restaurant R '
            "WHERE TIME(R) > 01/01/2002 AND TIME(R) < 01/01/2001"
        )
        assert plans[0]["strategy"] == "empty"

    def test_explain_unknown_document(self, figure1_db):
        plans = figure1_db.engine.explain(
            'SELECT R FROM doc("ghost.com")/r R'
        )
        assert plans[0]["strategy"] == "error"

    def test_explain_does_not_execute(self, figure1_db):
        figure1_db.store.repository.delta_reads = 0
        figure1_db.engine.explain(
            'SELECT R FROM doc("guide.com")[EVERY]/restaurant R'
        )
        assert figure1_db.store.repository.delta_reads == 0


class TestTrace:
    QUERY = 'SELECT TIME(R), R/price FROM doc("guide.com")[EVERY]/restaurant R'

    def _archive(self, guide_files):
        archive, v1, v2 = guide_files
        _run("put", "-a", str(archive), "guide.com", str(v1),
             "--ts", "01/01/2001")
        _run("update", "-a", str(archive), "guide.com", str(v2),
             "--ts", "15/01/2001")
        return archive

    def test_trace_renders_operator_tree(self, guide_files):
        archive = self._archive(guide_files)
        code, out = _run("trace", "-a", str(archive), self.QUERY)
        assert code == 0
        for needle in ("Query", "TPatternScanAll", "Project", "rows: 2"):
            assert needle in out

    def test_trace_json_and_out_file(self, guide_files, tmp_path):
        import json

        archive = self._archive(guide_files)
        target = tmp_path / "trace.json"
        code, out = _run(
            "trace", "-a", str(archive), "--json", "-o", str(target),
            self.QUERY,
        )
        assert code == 0
        printed = json.loads(out)
        on_disk = json.loads(target.read_text())
        assert printed == on_disk
        assert printed["row_count"] == 2
        assert printed["trace"]["name"] == "Query"

    def test_query_explain_prefix_prints_report(self, guide_files):
        archive = self._archive(guide_files)
        code, out = _run(
            "query", "-a", str(archive), "--xml",
            "EXPLAIN ANALYZE " + self.QUERY,
        )
        assert code == 0
        # reports have no XML envelope; the CLI falls back to text
        assert "Query" in out
        assert "total:" in out


class TestStorageCLI:
    """The ``--storage`` knob, ``stats -d``, and replica auto-tailing."""

    def _durable_db(self, tmp_path, storage="cas"):
        from repro import TemporalXMLDatabase

        db = TemporalXMLDatabase.open(
            tmp_path / "db", durability="journal", storage=storage
        )
        db.put(
            "guide.com",
            "<guide><restaurant><name>Napoli</name><price>15</price>"
            "</restaurant></guide>",
        )
        db.checkpoint()
        db.update(
            "guide.com",
            "<guide><restaurant><name>Napoli</name><price>18</price>"
            "</restaurant></guide>",
        )
        db.close()
        return tmp_path / "db"

    def test_recover_cas_directory(self, tmp_path):
        directory = self._durable_db(tmp_path)
        code, out = _run("recover", "-d", str(directory))
        assert code == 0
        assert "recovered 1 document(s)" in out
        assert "(storage: cas)" in out

    def test_recover_storage_flag_migrates_backend(self, tmp_path):
        directory = self._durable_db(tmp_path, storage="xml")
        # xml -> cas: recovery reads the existing format, the fresh
        # checkpoint writes the new one and retires the old files.
        code, out = _run("recover", "-d", str(directory), "--storage", "cas")
        assert code == 0
        assert "checkpoint used: checkpoint (storage: xml)" in out
        assert "fresh checkpoint written" in out
        assert (directory / "checkpoint.cas").exists()
        assert not (directory / "checkpoint.xml").exists()
        code, out = _run("stats", "-d", str(directory))
        assert "storage backend: cas" in out
        # cas -> xml: pointers go away and the object store is swept.
        code, out = _run("recover", "-d", str(directory), "--storage", "xml")
        assert code == 0
        assert "checkpoint used: checkpoint (storage: cas)" in out
        assert (directory / "checkpoint.xml").exists()
        assert not (directory / "checkpoint.cas").exists()
        from repro.storage.cas import CASObjectStore

        assert CASObjectStore(directory).stored_bytes() == 0
        # Nothing was lost across the round trip.
        code, out = _run("recover", "-d", str(directory), "--no-checkpoint")
        assert code == 0
        assert "recovered 1 document(s)" in out
        assert "(storage: xml)" in out

    def test_stats_dir_prints_backend_breakdown(self, tmp_path):
        directory = self._durable_db(tmp_path)
        code, out = _run("stats", "-d", str(directory))
        assert code == 0
        assert "storage backend: cas" in out
        assert "objects:" in out
        assert "kind[current]" in out
        assert "dedup ratio" in out

    def test_stats_dir_json_breakdown(self, tmp_path):
        import json

        directory = self._durable_db(tmp_path)
        code, out = _run("stats", "-d", str(directory), "--json")
        assert code == 0
        payload = json.loads(out)
        storage = payload["storage"]
        assert storage["storage"] == "cas"
        backend = storage["backend"]
        disk = backend["disk_by_kind"]
        assert set(disk) >= {"current", "checkpoint"}
        for counters in disk.values():
            assert counters["stored_bytes"] > 0
            assert counters["objects"] > 0
        assert backend["disk_bytes"] > 0
        assert storage["logical"]["total"] > 0

    def test_stats_dir_xml_backend(self, tmp_path):
        directory = self._durable_db(tmp_path, storage="xml")
        code, out = _run("stats", "-d", str(directory))
        assert code == 0
        assert "storage backend: xml" in out
        assert "checkpoint:" in out
        assert "byte(s)" in out

    def test_replica_follow_for_tails_and_exits(self, tmp_path):
        directory = self._durable_db(tmp_path)
        code, out = _run(
            "replica", "-d", str(directory),
            "--follow", "0.01", "--follow-for", "0.05",
        )
        assert code == 0
        assert "following" in out
        assert "replica of" in out
        assert "1 document(s)" in out
