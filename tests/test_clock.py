"""Tests for timestamps, intervals, and the logical clock."""

import pytest
from hypothesis import given, strategies as st

from repro.clock import (
    BEFORE_TIME,
    Interval,
    LogicalClock,
    SECONDS_PER_DAY,
    SECONDS_PER_WEEK,
    UNTIL_CHANGED,
    coalesce,
    format_timestamp,
    interval_seconds,
    parse_date,
)
from repro.errors import TimeError


class TestParseDate:
    def test_paper_literal(self):
        assert parse_date("26/01/2001") == parse_date("25/01/2001") + SECONDS_PER_DAY

    def test_epoch(self):
        assert parse_date("01/01/1970") == 0

    def test_with_time_of_day(self):
        base = parse_date("26/01/2001")
        assert parse_date("26/01/2001 01:30") == base + 5400
        assert parse_date("26/01/2001 00:00:59") == base + 59

    def test_leap_year(self):
        assert (
            parse_date("01/03/2000") - parse_date("28/02/2000")
            == 2 * SECONDS_PER_DAY
        )

    def test_non_leap_century(self):
        assert (
            parse_date("01/03/1900") - parse_date("28/02/1900")
            == SECONDS_PER_DAY
        )

    @pytest.mark.parametrize(
        "bad",
        ["", "2001-01-26", "32/01/2001", "01/13/2001", "29/02/2001",
         "26/01/2001 24:00", "26/1/01"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(TimeError):
            parse_date(bad)


class TestFormatTimestamp:
    def test_roundtrip_date_only(self):
        assert format_timestamp(parse_date("26/01/2001")) == "26/01/2001"

    def test_roundtrip_with_time(self):
        text = "05/07/1999 13:45:07"
        assert format_timestamp(parse_date(text)) == text

    def test_sentinels(self):
        assert format_timestamp(UNTIL_CHANGED) == "UC"
        assert format_timestamp(BEFORE_TIME) == "-inf"

    @given(
        st.integers(
            min_value=0, max_value=parse_date("31/12/2199 23:59:59")
        )
    )
    def test_property_roundtrip(self, ts):
        assert parse_date(format_timestamp(ts)) == ts


class TestIntervalSeconds:
    def test_units(self):
        assert interval_seconds(14, "DAYS") == 14 * SECONDS_PER_DAY
        assert interval_seconds(2, "weeks") == 2 * SECONDS_PER_WEEK
        assert interval_seconds(1, "HOUR") == 3600

    def test_unknown_unit(self):
        with pytest.raises(TimeError):
            interval_seconds(3, "FORTNIGHTS")


class TestInterval:
    def test_rejects_empty(self):
        with pytest.raises(TimeError):
            Interval(5, 5)
        with pytest.raises(TimeError):
            Interval(6, 5)

    def test_contains_half_open(self):
        interval = Interval(10, 20)
        assert interval.contains(10)
        assert interval.contains(19)
        assert not interval.contains(20)
        assert not interval.contains(9)

    def test_overlaps_and_intersect(self):
        a = Interval(0, 10)
        b = Interval(5, 15)
        assert a.overlaps(b) and b.overlaps(a)
        assert a.intersect(b) == Interval(5, 10)

    def test_adjacent_do_not_overlap(self):
        a = Interval(0, 10)
        b = Interval(10, 20)
        assert not a.overlaps(b)
        assert a.intersect(b) is None
        assert a.meets(b)

    def test_merge(self):
        assert Interval(0, 10).merge(Interval(10, 20)) == Interval(0, 20)
        with pytest.raises(TimeError):
            Interval(0, 5).merge(Interval(6, 9))

    def test_is_current(self):
        assert Interval(0, UNTIL_CHANGED).is_current
        assert not Interval(0, 10).is_current


class TestCoalesce:
    def test_merges_overlapping_and_adjacent(self):
        merged = coalesce([Interval(5, 7), Interval(1, 3), Interval(3, 6)])
        assert merged == [Interval(1, 7)]

    def test_keeps_gaps(self):
        merged = coalesce([Interval(0, 2), Interval(5, 8)])
        assert merged == [Interval(0, 2), Interval(5, 8)]

    def test_empty(self):
        assert coalesce([]) == []

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 100), st.integers(1, 20)
            ).map(lambda p: Interval(p[0], p[0] + p[1])),
            max_size=20,
        )
    )
    def test_property_disjoint_sorted_and_covering(self, intervals):
        merged = coalesce(intervals)
        # Sorted and pairwise disjoint with gaps.
        for left, right in zip(merged, merged[1:]):
            assert left.end < right.start
        # Same coverage: every input instant is covered by exactly the merge.
        covered = set()
        for interval in intervals:
            covered.update(range(interval.start, interval.end))
        merged_cover = set()
        for interval in merged:
            merged_cover.update(range(interval.start, interval.end))
        assert covered == merged_cover


class TestLogicalClock:
    def test_advances_by_tick(self):
        clock = LogicalClock(start=100, tick=5)
        assert clock.now() == 100
        assert clock.advance() == 105
        assert clock.advance(2) == 107

    def test_rejects_backwards(self):
        clock = LogicalClock(start=100)
        with pytest.raises(TimeError):
            clock.advance(-1)
        with pytest.raises(TimeError):
            clock.advance_to(99)

    def test_advance_to(self):
        clock = LogicalClock(start=100)
        assert clock.advance_to(150) == 150
        assert clock.advance_to(150) == 150  # same instant allowed

    def test_bad_tick(self):
        with pytest.raises(TimeError):
            LogicalClock(tick=0)
