"""Crash-consistency matrix: every injected crash point must recover cleanly.

The contract under test (ISSUE 3 acceptance): for **every** mutating
filesystem operation k in a scripted workload, crashing at k and then
recovering must yield a store whose commit history is an exact **prefix**
of the uncrashed run's history — same commits, same timestamps, and every
surviving version byte-identical — and recovery must never raise on a torn
tail.  The workload covers document creation, updates, deletion, and two
checkpoints, so crash points land inside journal appends, fsyncs, atomic
checkpoint writes, renames, and journal rolls.
"""

import pytest

from repro import TemporalXMLDatabase
from repro.errors import CorruptArchiveError
from repro.storage.faults import CrashError, FaultyFS, flip_bit
from repro.xmlcore import serialize

A1 = "<doc><x>alpha one</x><y>beta</y></doc>"
A2 = "<doc><x>alpha two</x><y>beta</y><z>gamma</z></doc>"
A3 = "<doc><x>alpha three</x><z>gamma delta</z></doc>"
A4 = "<doc><x>alpha four</x></doc>"
B1 = "<doc><m>mu one</m></doc>"
B2 = "<doc><m>mu two</m><n>nu</n></doc>"
C1 = "<doc><p>pi one</p></doc>"
C2 = "<doc><p>pi two</p><q>chi</q></doc>"


def run_workload(db):
    """Deterministic commits + checkpoints (9 commits, 2 checkpoints)."""
    db.put("a.xml", A1)
    db.put("b.xml", B1)
    db.update("a.xml", A2)
    db.update("b.xml", B2)
    db.checkpoint()
    db.update("a.xml", A3)
    db.put("c.xml", C1)
    db.delete("b.xml")
    db.checkpoint()
    db.update("c.xml", C2)
    db.update("a.xml", A4)


def commit_history(store):
    """The store's commit sequence as (kind, name, version, ts) tuples."""
    events = []
    for record in store.repository.records():
        entries = record.dindex.entries
        events.append(("create", record.name, 1, entries[0].timestamp))
        for entry in entries[1:]:
            events.append(("update", record.name, entry.number, entry.timestamp))
        if record.dindex.deleted_at is not None:
            events.append(
                (
                    "delete",
                    record.name,
                    record.dindex.current_number,
                    record.dindex.deleted_at,
                )
            )
    events.sort(key=lambda event: event[3])
    return events


def version_contents(store):
    """Byte content of every version of every document."""
    contents = {}
    for record in store.repository.records():
        for entry in record.dindex.entries:
            contents[(record.name, entry.number)] = serialize(
                store.version(record.doc_id, entry.number)
            )
    return contents


def reference_run(tmp_path, durability):
    """Uncrashed run; returns (expected history, contents, total fs ops)."""
    fs = FaultyFS()  # counts ops, never crashes
    db = TemporalXMLDatabase.open(
        tmp_path / "reference", durability=durability, fs=fs
    )
    run_workload(db)
    db.close()
    return commit_history(db.store), version_contents(db.store), fs.ops


def assert_recovers_to_prefix(directory, expected, contents):
    """Recovery must not raise and must yield an exact history prefix."""
    db = TemporalXMLDatabase.open(directory, durability="journal")
    try:
        got = commit_history(db.store)
        assert got == expected[: len(got)], (
            f"recovered history is not a prefix: {got}"
        )
        recovered = version_contents(db.store)
        for key, data in recovered.items():
            assert data == contents[key], f"content diverged for {key}"
        return len(got), db.recovery
    finally:
        db.close()


@pytest.mark.parametrize("durability", ["fsync", "journal"])
def test_crash_matrix(tmp_path, durability):
    expected, contents, total_ops = reference_run(tmp_path, durability)
    assert len(expected) == 9
    assert total_ops >= 30, (
        f"workload exposes only {total_ops} crash points; need >= 30"
    )

    prefix_lengths = set()
    for k in range(1, total_ops + 1):
        directory = tmp_path / f"crash-{durability}-{k}"
        fs = FaultyFS(crash_at=k)
        try:
            db = TemporalXMLDatabase.open(
                directory, durability=durability, fs=fs
            )
            run_workload(db)
            db.close()
            raise AssertionError(
                f"crash point {k} never fired (>{fs.ops} ops?)"
            )
        except CrashError:
            pass
        survived, _report = assert_recovers_to_prefix(
            directory, expected, contents
        )
        prefix_lengths.add(survived)

    # The matrix must actually exercise partial histories, not just the
    # trivial endpoints.
    assert len(prefix_lengths) >= 4
    assert max(prefix_lengths) <= len(expected)


def test_torn_write_fractions(tmp_path):
    """Different tear points within the crashing write all stay consistent."""
    expected, contents, total_ops = reference_run(tmp_path, "fsync")
    # Crash inside journal appends and the checkpoint write with varying
    # amounts of the in-flight buffer reaching disk.
    for fraction in (0.0, 0.3, 0.9):
        for k in (3, 7, 12, 19, 25, total_ops - 2):
            directory = tmp_path / f"torn-{fraction}-{k}"
            fs = FaultyFS(crash_at=k, torn_fraction=fraction)
            try:
                db = TemporalXMLDatabase.open(
                    directory, durability="fsync", fs=fs
                )
                run_workload(db)
                db.close()
            except CrashError:
                pass
            assert_recovers_to_prefix(directory, expected, contents)


def run_grouped_workload(db):
    """The same 9 commits as :func:`run_workload`, but through commit
    groups of 3 / 2 / 3 / 1 with a checkpoint in the middle."""
    with db.batch() as b:
        b.put("a.xml", A1)
        b.put("b.xml", B1)
        b.update("a.xml", A2)
    with db.batch() as b:
        b.update("b.xml", B2)
        b.update("a.xml", A3)
    db.checkpoint()
    with db.batch() as b:
        b.put("c.xml", C1)
        b.delete("b.xml")
        b.update("c.xml", C2)
    with db.batch() as b:
        b.update("a.xml", A4)


#: Commit counts at which a crashed grouped run may legally land: whole
#: groups only — 0, 3, 5, 8, or all 9 commits.
GROUP_BOUNDARIES = frozenset({0, 3, 5, 8, 9})


class TestGroupCommitCrashMatrix:
    """All-or-nothing: no crash point may ever split a commit group."""

    def _reference(self, tmp_path, storage):
        fs = FaultyFS()  # counts ops, never crashes
        db = TemporalXMLDatabase.open(
            tmp_path / "reference", durability="fsync", fs=fs,
            storage=storage,
        )
        run_grouped_workload(db)
        db.close()
        expected = commit_history(db.store)
        assert len(expected) == 9
        return expected, version_contents(db.store), fs.ops

    @pytest.mark.parametrize("storage", ["xml", "cas"])
    def test_group_crash_matrix(self, tmp_path, storage):
        expected, contents, total_ops = self._reference(tmp_path, storage)
        prefix_lengths = set()
        for k in range(1, total_ops + 1):
            directory = tmp_path / f"gcrash-{storage}-{k}"
            fs = FaultyFS(crash_at=k)
            try:
                db = TemporalXMLDatabase.open(
                    directory, durability="fsync", fs=fs, storage=storage
                )
                run_grouped_workload(db)
                db.close()
                raise AssertionError(
                    f"crash point {k} never fired (>{fs.ops} ops?)"
                )
            except CrashError:
                pass
            survived, _report = assert_recovers_to_prefix(
                directory, expected, contents
            )
            assert survived in GROUP_BOUNDARIES, (
                f"crash point {k} ({storage}) split a commit group: "
                f"{survived} commits survived"
            )
            prefix_lengths.add(survived)
        # The matrix must land on several distinct group boundaries, not
        # just the endpoints.
        assert len(prefix_lengths) >= 3

    @pytest.mark.parametrize("storage", ["xml", "cas"])
    def test_torn_group_writes_stay_atomic(self, tmp_path, storage):
        """Partial bytes of the in-flight group record reaching disk must
        still drop the whole group on recovery."""
        expected, contents, total_ops = self._reference(
            tmp_path / "torn", storage
        )
        for fraction in (0.3, 0.9):
            for k in (2, 5, 9, 14, total_ops - 3):
                directory = tmp_path / f"gtorn-{storage}-{fraction}-{k}"
                fs = FaultyFS(crash_at=k, torn_fraction=fraction)
                try:
                    db = TemporalXMLDatabase.open(
                        directory, durability="fsync", fs=fs, storage=storage
                    )
                    run_grouped_workload(db)
                    db.close()
                except CrashError:
                    pass
                survived, _report = assert_recovers_to_prefix(
                    directory, expected, contents
                )
                assert survived in GROUP_BOUNDARIES, (
                    f"torn write {fraction}@{k} ({storage}) split a group: "
                    f"{survived}"
                )


class TestSilentCorruption:
    def _clean_run(self, tmp_path):
        db = TemporalXMLDatabase.open(tmp_path / "db", durability="fsync")
        run_workload(db)
        db.close()
        return (
            tmp_path / "db",
            commit_history(db.store),
            version_contents(db.store),
        )

    def test_bit_flip_in_journal_truncates_to_prefix(self, tmp_path):
        directory, expected, contents = self._clean_run(tmp_path)
        journal = directory / "journal.bin"
        # Flip a bit inside the first record after the rolled generation.
        flip_bit(str(journal), 20)
        survived, report = assert_recovers_to_prefix(
            str(directory), expected, contents
        )
        assert report.torn_tail
        assert report.records_truncated >= 1
        assert survived < len(expected)

    def test_bit_flip_in_checkpoint_falls_back(self, tmp_path):
        directory, expected, contents = self._clean_run(tmp_path)
        checkpoint = directory / "checkpoint.xml"
        flip_bit(str(checkpoint), checkpoint.stat().st_size // 2)
        survived, report = assert_recovers_to_prefix(
            str(directory), expected, contents
        )
        # Previous checkpoint + both journal generations cover everything.
        assert survived == len(expected)
        assert report.checkpoint_source in ("previous", "none")
        assert report.checkpoint_errors

    def test_both_checkpoints_corrupt_is_detected(self, tmp_path):
        directory, expected, contents = self._clean_run(tmp_path)
        for name in ("checkpoint.xml", "checkpoint.xml.prev"):
            path = directory / name
            flip_bit(str(path), path.stat().st_size // 2)
        # History before the first checkpoint is gone; recovery must say
        # so loudly instead of fabricating a partial store.
        with pytest.raises(CorruptArchiveError):
            TemporalXMLDatabase.open(str(directory), durability="journal")
