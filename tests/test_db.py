"""Tests for the TemporalXMLDatabase facade and bench harness utilities."""


from repro import TemporalXMLDatabase, parse_date
from repro.bench import CostMeter, Table
from repro.query import QueryOptions
from repro.workload import load_figure1

from tests.conftest import JAN_26


class TestFacade:
    def test_quickstart_flow(self):
        db = TemporalXMLDatabase()
        db.put("d.xml", "<a><b>one</b></a>")
        db.update("d.xml", "<a><b>two</b></a>")
        result = db.query('SELECT D/b FROM doc("d.xml") D')
        assert len(result) == 1
        db.delete("d.xml")
        assert db.documents() == []

    def test_ts_helper(self):
        assert TemporalXMLDatabase.ts("26/01/2001") == parse_date("26/01/2001")

    def test_indexes_wired(self):
        db = TemporalXMLDatabase()
        load_figure1(db)
        assert db.fti.lookup("napoli")
        assert len(db.lifetime) > 0
        # Default facade options let the optimizer pick per CREATE TIME call.
        assert db.engine.options.lifetime_strategy == "auto"

    def test_custom_options(self):
        db = TemporalXMLDatabase(
            options=QueryOptions(
                use_pattern_index=False, lifetime_strategy="traverse"
            )
        )
        load_figure1(db)
        result = db.query(
            'SELECT R/name FROM doc("guide.com")[26/01/2001]/restaurant R'
        )
        assert len(result) == 2

    def test_snapshot_interval_plumbing(self):
        db = TemporalXMLDatabase(snapshot_interval=2)
        db.put("d.xml", "<a><b>0</b></a>")
        for value in range(1, 4):
            db.update("d.xml", f"<a><b>{value}</b></a>")
        entries = db.store.delta_index("d.xml").entries
        assert any(e.has_snapshot for e in entries)

    def test_now_and_snapshot(self):
        db = TemporalXMLDatabase()
        load_figure1(db)
        assert db.snapshot("guide.com", JAN_26) is not None
        assert db.now() >= JAN_26


class TestCostMeter:
    def test_measures_store_counters(self):
        db = TemporalXMLDatabase()
        load_figure1(db)
        meter = CostMeter(store=db.store, indexes=[db.fti])
        with meter.measure() as region:
            result = db.query(
                'SELECT R FROM doc("guide.com")[26/01/2001]/restaurant R'
            )
            result.to_xml()  # force reconstruction of the selected elements
        cost = region.result
        assert cost.wall_ms >= 0
        assert cost.postings_scanned > 0
        assert cost.delta_reads > 0  # Q1 reconstructs the Jan-26 snapshot

    def test_estimated_io(self):
        from repro.bench.harness import Measurement

        m = Measurement(seeks=2, pages_read=10)
        assert m.estimated_io_ms(seek_ms=8.0, page_ms=0.1) == 17.0
        assert m.as_dict()["seeks"] == 2


class TestTable:
    def test_render(self):
        table = Table("demo", ["col", "value"])
        table.add("a", 1)
        table.add("bb", 2.5)
        table.note("a note")
        text = table.render()
        assert "demo" in text
        assert "bb" in text
        assert "2.500" in text
        assert "note: a note" in text


class TestTableFormatting:
    def test_large_floats_one_decimal(self):
        table = Table("fmt", ["v"])
        table.add(1234.5678)
        assert "1234.6" in table.render()

    def test_small_floats_three_decimals(self):
        table = Table("fmt", ["v"])
        table.add(1.23456)
        assert "1.235" in table.render()


class TestCostMeterStratum:
    def test_stratum_counters(self):
        from repro.stratum import StratumStore
        from repro.workload import load_figure1 as _lf

        stratum = StratumStore()
        _lf(stratum)
        meter = CostMeter(stratum=stratum)
        with meter.measure() as region:
            stratum.snapshot("guide.com", TemporalXMLDatabase.ts("26/01/2001"))
        assert region.result.version_reads == 1
        assert region.result.pages_read >= 1
