"""Tests for the delta-operation index (alt 2), hybrid (alt 3), and the
lifetime index."""

import pytest

from repro.index import (
    DeltaOperationIndex,
    HybridIndex,
    LifetimeIndex,
    TemporalFullTextIndex,
)
from repro.index.delta_fti import OP_DELETE, OP_INSERT, OP_UPDATE
from repro.model.identifiers import EID
from repro.storage import TemporalDocumentStore
from repro.workload import load_figure1

from tests.conftest import JAN_01, JAN_15, JAN_26, JAN_31


@pytest.fixture
def stores():
    store = TemporalDocumentStore()
    ops = store.subscribe(DeltaOperationIndex())
    lifetime = store.subscribe(LifetimeIndex())
    load_figure1(store)
    return store, ops, lifetime


class TestDeltaOperationIndex:
    def test_insert_events_on_create(self, stores):
        _store, ops, _lifetime = stores
        events = ops.events_for_word("napoli", OP_INSERT)
        assert len(events) == 1
        assert events[0].ts == JAN_01

    def test_deletion_time_query_is_direct(self, stores):
        _store, ops, _lifetime = stores
        assert ops.deletion_time("akropolis") == [JAN_31]

    def test_update_events(self, stores):
        _store, ops, _lifetime = stores
        updates = ops.events_for_word("18", OP_INSERT)
        assert [e.ts for e in updates] == [JAN_31]
        removed = ops.events_for_word("15", OP_DELETE)
        assert [e.ts for e in removed] == [JAN_31]

    def test_op_keyword_lists_grow(self, stores):
        _store, ops, _lifetime = stores
        assert len(ops.events_for_op(OP_INSERT)) > 5
        assert len(ops.events_for_op(OP_DELETE)) >= 1
        assert len(ops.events_for_op(OP_UPDATE)) >= 1

    def test_snapshot_fold(self, stores):
        _store, ops, _lifetime = stores
        assert len(ops.lookup_t("akropolis", JAN_26)) == 1
        assert ops.lookup_t("akropolis", JAN_31) == []
        assert ops.lookup_t("akropolis", JAN_01) == []

    def test_document_delete_indexed(self, stores):
        store, ops, _lifetime = stores
        store.delete("guide.com")
        assert len(ops.deletion_time("napoli")) == 1

    def test_size_explosion_vs_content_index(self):
        """The paper's complaint: delta indexing stores far more entries."""
        store = TemporalDocumentStore()
        content = store.subscribe(TemporalFullTextIndex())
        operations = store.subscribe(DeltaOperationIndex())
        store.put("d.xml", "<a><b>stable words here</b><c>hot</c></a>")
        for value in range(20):
            store.update(
                "d.xml",
                f"<a><b>stable words here</b><c>v{value}</c></a>",
            )
        # Content index: stable words have one posting; only the changing
        # word accumulates. Operation index pays per commit.
        assert operations.posting_count() > content.posting_count()


class TestHybridIndex:
    def test_routes_both_query_classes(self):
        store = TemporalDocumentStore()
        hybrid = store.subscribe(HybridIndex())
        load_figure1(store)
        assert len(hybrid.lookup_t("akropolis", JAN_26)) == 1
        assert hybrid.deletion_time("akropolis") == [JAN_31]

    def test_costs_are_summed(self):
        store = TemporalDocumentStore()
        hybrid = store.subscribe(HybridIndex())
        load_figure1(store)
        assert hybrid.posting_count() == (
            hybrid.content.posting_count()
            + hybrid.operations.posting_count()
        )
        assert hybrid.update_ops() > hybrid.content.stats.update_ops


class TestLifetimeIndex:
    def test_create_times(self, stores):
        store, _ops, lifetime = stores
        doc_id = store.doc_id("guide.com")
        v2 = store.version("guide.com", 2)
        napoli, akropolis = v2.child_elements()
        assert lifetime.create_time(EID(doc_id, napoli.xid)) == JAN_01
        assert lifetime.create_time(EID(doc_id, akropolis.xid)) == JAN_15

    def test_delete_times(self, stores):
        store, _ops, lifetime = stores
        doc_id = store.doc_id("guide.com")
        v2 = store.version("guide.com", 2)
        napoli, akropolis = v2.child_elements()
        assert lifetime.delete_time(EID(doc_id, akropolis.xid)) == JAN_31
        assert lifetime.delete_time(EID(doc_id, napoli.xid)) is None

    def test_document_delete_closes_all(self, stores):
        store, _ops, lifetime = stores
        doc_id = store.doc_id("guide.com")
        delete_ts = JAN_31 + 1000
        store.delete("guide.com", ts=delete_ts)
        assert lifetime.delete_time(EID(doc_id, 1)) == delete_ts

    def test_unknown_eid(self, stores):
        _store, _ops, lifetime = stores
        assert lifetime.create_time(EID(99, 99)) is None
        assert not lifetime.known(EID(99, 99))

    def test_lifespan(self, stores):
        store, _ops, lifetime = stores
        doc_id = store.doc_id("guide.com")
        v2 = store.version("guide.com", 2)
        akropolis = v2.child_elements()[1]
        assert lifetime.lifespan(EID(doc_id, akropolis.xid)) == (
            JAN_15,
            JAN_31,
        )

    def test_every_stored_node_has_entry(self, stores):
        store, _ops, lifetime = stores
        record = store.record("guide.com")
        alive_xids = {n.xid for n in record.current_root.iter()}
        doc_id = record.doc_id
        for xid in alive_xids:
            assert lifetime.known(EID(doc_id, xid))

    def test_commit_batches_counted(self, stores):
        _store, _ops, lifetime = stores
        assert lifetime.commit_batches == 3
