"""Tests for the per-document delta index."""

import pytest

from repro.clock import UNTIL_CHANGED
from repro.errors import NoSuchVersionError
from repro.storage.deltaindex import DeltaIndex, VersionEntry


def _index(timestamps, deleted_at=None, snapshots=()):
    index = DeltaIndex()
    for number, ts in enumerate(timestamps, start=1):
        entry = VersionEntry(number, ts)
        if number in snapshots:
            entry.snapshot_extent = object()
        index.append(entry)
    index.deleted_at = deleted_at
    return index


class TestAppend:
    def test_requires_first_version_one(self):
        index = DeltaIndex()
        with pytest.raises(NoSuchVersionError):
            index.append(VersionEntry(2, 100))

    def test_requires_contiguous_numbers(self):
        index = _index([100])
        with pytest.raises(NoSuchVersionError):
            index.append(VersionEntry(3, 200))

    def test_requires_increasing_timestamps(self):
        index = _index([100])
        with pytest.raises(NoSuchVersionError):
            index.append(VersionEntry(2, 100))


class TestLookups:
    def test_entry_bounds(self):
        index = _index([100, 200])
        assert index.entry(1).timestamp == 100
        with pytest.raises(NoSuchVersionError):
            index.entry(3)
        with pytest.raises(NoSuchVersionError):
            index.entry(0)

    def test_current(self):
        index = _index([100, 200, 300])
        assert index.current_number == 3
        assert index.current().timestamp == 300
        assert index.current_ts() == 300

    def test_empty_index(self):
        with pytest.raises(NoSuchVersionError):
            DeltaIndex().current_number

    def test_version_at(self):
        index = _index([100, 200, 300])
        assert index.version_at(99) is None
        assert index.version_at(100).number == 1
        assert index.version_at(250).number == 2
        assert index.version_at(10**9).number == 3

    def test_version_at_respects_deletion(self):
        index = _index([100, 200], deleted_at=500)
        assert index.version_at(499).number == 2
        assert index.version_at(500) is None
        assert index.is_deleted

    def test_end_of(self):
        index = _index([100, 200])
        assert index.end_of(index.entry(1)) == 200
        assert index.end_of(index.entry(2)) == UNTIL_CHANGED
        deleted = _index([100, 200], deleted_at=300)
        assert deleted.end_of(deleted.entry(2)) == 300


class TestVersionsIn:
    def test_overlap_semantics(self):
        index = _index([100, 200, 300])
        assert [e.number for e in index.versions_in(150, 250)] == [1, 2]
        assert [e.number for e in index.versions_in(200, 201)] == [2]
        assert [e.number for e in index.versions_in(0, 100)] == []
        assert [e.number for e in index.versions_in(0, 101)] == [1]

    def test_whole_history(self):
        index = _index([100, 200, 300])
        assert len(index.versions_in(0, UNTIL_CHANGED)) == 3

    def test_after_deletion_nothing_current(self):
        index = _index([100], deleted_at=150)
        assert [e.number for e in index.versions_in(150, 1000)] == []
        assert [e.number for e in index.versions_in(100, 150)] == [1]


class TestNavigation:
    def test_previous_next_current(self):
        index = _index([100, 200, 300])
        assert index.previous_ts(250) == 100
        assert index.previous_ts(100) is None
        assert index.next_ts(100) == 200
        assert index.next_ts(300) is None
        assert index.current_ts() == 300

    def test_navigation_outside_lifetime(self):
        index = _index([100, 200])
        assert index.previous_ts(50) is None
        assert index.next_ts(50) is None


class TestSnapshots:
    def test_nearest_snapshot_at_or_after(self):
        index = _index([100, 200, 300, 400], snapshots={3})
        assert index.nearest_snapshot_at_or_after(1).number == 3
        assert index.nearest_snapshot_at_or_after(3).number == 3
        assert index.nearest_snapshot_at_or_after(4) is None

    def test_nearest_snapshot_at_or_before(self):
        index = _index([100, 200, 300, 400], snapshots={2, 4})
        assert index.nearest_snapshot_at_or_before(1) is None
        assert index.nearest_snapshot_at_or_before(2).number == 2
        assert index.nearest_snapshot_at_or_before(3).number == 2
        assert index.nearest_snapshot_at_or_before(4).number == 4

    def test_register_snapshot_is_idempotent_and_sorted(self):
        index = _index([100, 200, 300])
        index.register_snapshot(3)
        index.register_snapshot(1)
        index.register_snapshot(3)
        assert index.snapshot_numbers() == [1, 3]
        assert index.nearest_snapshot_at_or_after(2).number == 3
        assert index.nearest_snapshot_at_or_before(2).number == 1

    def test_snapshot_numbers_returns_copy(self):
        index = _index([100, 200], snapshots={1})
        numbers = index.snapshot_numbers()
        numbers.append(99)
        assert index.snapshot_numbers() == [1]

    def test_len(self):
        assert len(_index([100, 200])) == 2


class TestDeltaBytes:
    def _sized(self, sizes):
        index = _index([100 * n for n in range(1, len(sizes) + 2)])
        for number, size in enumerate(sizes, start=1):
            index.record_delta_bytes(number, size)
        return index

    def test_delta_bytes_between(self):
        index = self._sized([10, 20, 30])
        assert index.delta_bytes_between(1, 4) == 60
        assert index.delta_bytes_between(2, 4) == 50
        assert index.delta_bytes_between(1, 2) == 10
        assert index.delta_bytes_between(3, 3) == 0
        assert index.delta_bytes_between(4, 1) == 0

    def test_bounds_are_clamped(self):
        index = self._sized([10, 20])
        assert index.delta_bytes_between(0, 100) == 30
        assert index.delta_bytes_between(-5, 2) == 10

    def test_prefix_cache_invalidated_by_updates(self):
        index = self._sized([10, 20])
        assert index.delta_bytes_between(1, 3) == 30
        index.record_delta_bytes(1, 100)
        assert index.delta_bytes_between(1, 3) == 120
        index.append(VersionEntry(4, 1000))
        index.record_delta_bytes(3, 5)
        assert index.delta_bytes_between(1, 4) == 125
