"""Determinism guarantees for the workload generators and the crawler.

Everything the scale suite and the differential tests rely on — "same
seed, same history" — is pinned here directly: TDocGen trees, simulated
web timelines, crawl outcomes, and the batched ingestion drivers.
"""

from repro.clock import parse_date
from repro.storage import TemporalDocumentStore
from repro.storage.persistence import archive_bytes, build_archive
from repro.warehouse.crawler import Crawler, round_robin_schedule
from repro.workload import (
    TDocGenerator,
    build_simulated_web,
    ingest_crawl,
    ingest_synthetic,
)
from repro.xmlcore import serialize

START = parse_date("01/01/2001")


class TestTDocGenDeterminism:
    def test_same_seed_same_version_sequence(self):
        a = TDocGenerator(seed=21)
        b = TDocGenerator(seed=21)
        for name in ("x.xml", "y.xml"):
            seq_a = a.version_sequence(name, 8)
            seq_b = b.version_sequence(name, 8)
            assert [serialize(t) for t in seq_a] == [
                serialize(t) for t in seq_b
            ]

    def test_different_seeds_diverge(self):
        a = TDocGenerator(seed=21)
        b = TDocGenerator(seed=22)
        assert serialize(a.document("x.xml")) != serialize(
            b.document("x.xml")
        )

    def test_interleaved_documents_stay_deterministic(self):
        # Evolution order matters (one shared RNG); the same interleaving
        # must reproduce byte-for-byte.
        def history(gen):
            out = [gen.document("p"), gen.document("q")]
            for _ in range(5):
                out.append(gen.evolve("p"))
                out.append(gen.evolve("q"))
            return [serialize(t) for t in out]

        assert history(TDocGenerator(seed=5)) == history(
            TDocGenerator(seed=5)
        )


class TestCrawlerDeterminism:
    def _crawled_store(self, seed=13):
        web = build_simulated_web(
            n_urls=6, states_per_url=5, seed=seed, start_ts=START
        )
        store = TemporalDocumentStore()
        schedule = round_robin_schedule(
            web.urls(), START, START + 6 * 86400, 3600 * 7
        )
        report = Crawler(web, store).run(schedule)
        return store, report

    def test_same_seed_same_web_and_crawl(self):
        store_a, report_a = self._crawled_store()
        store_b, report_b = self._crawled_store()
        assert archive_bytes(build_archive(store_a)) == archive_bytes(
            build_archive(store_b)
        )
        assert report_a.per_url == report_b.per_url
        assert report_a.stored_versions == report_b.stored_versions

    def test_simulated_web_timelines_reproduce(self):
        web_a = build_simulated_web(n_urls=4, states_per_url=4, seed=9)
        web_b = build_simulated_web(n_urls=4, states_per_url=4, seed=9)
        assert web_a.urls() == web_b.urls()
        for url in web_a.urls():
            states_a = web_a.states_in(url, 0, 2**61)
            states_b = web_b.states_in(url, 0, 2**61)
            assert [ts for ts, _ in states_a] == [ts for ts, _ in states_b]
            assert [serialize(c) for _, c in states_a] == [
                serialize(c) for _, c in states_b
            ]


class TestIngestDriverDeterminism:
    def test_ingest_synthetic_reproduces(self):
        def run():
            store = TemporalDocumentStore()
            report = ingest_synthetic(
                store, n_docs=5, versions_per_doc=6, batch_size=4,
                generator=TDocGenerator(seed=77),
            )
            return archive_bytes(build_archive(store)), report

        bytes_a, report_a = run()
        bytes_b, report_b = run()
        assert bytes_a == bytes_b
        assert report_a.versions == report_b.versions == 30
        assert report_a.elements == report_b.elements
        assert report_a.groups == report_b.groups

    def test_ingest_crawl_reproduces(self):
        def run():
            store = TemporalDocumentStore()
            report, crawl = ingest_crawl(
                store, n_urls=5, states_per_url=4, batch_size=6, seed=3
            )
            return archive_bytes(build_archive(store)), report, crawl

        bytes_a, report_a, crawl_a = run()
        bytes_b, report_b, crawl_b = run()
        assert bytes_a == bytes_b
        assert report_a.versions == report_b.versions
        assert report_a.elements == report_b.elements
        assert crawl_a.per_url == crawl_b.per_url

    def test_batch_size_does_not_change_the_store(self):
        def run(batch_size):
            store = TemporalDocumentStore(snapshot_interval=3)
            ingest_synthetic(
                store, n_docs=4, versions_per_doc=5,
                batch_size=batch_size, generator=TDocGenerator(seed=8),
            )
            return archive_bytes(build_archive(store))

        assert run(1) == run(16) == run(1000)
