"""Tests for matching and diffing: identity persistence and roundtrips."""

import pytest

from repro.diff import apply_script, diff, match_trees
from repro.diff.editscript import (
    DeleteOp,
    InsertOp,
    MoveOp,
    ReplaceRootOp,
    UpdateAttrOp,
    UpdateTextOp,
)
from repro.errors import DiffError
from repro.model.identifiers import XIDAllocator
from repro.model.versioned import (
    stamp_new_nodes,
    verify_timestamp_invariant,
)
from repro.xmlcore import Path, parse


def _stamped(text, alloc=None, ts=100):
    tree = parse(text)
    stamp_new_nodes(tree, alloc or XIDAllocator(), ts)
    return tree


def _roundtrip(old_text, new_text, ts=200):
    """Diff two documents and verify both application directions."""
    alloc = XIDAllocator()
    old = _stamped(old_text, alloc)
    new = parse(new_text)
    script = diff(old, new, alloc, commit_ts=ts)
    forward = apply_script(old.copy(), script)
    assert forward.equals_deep(new)
    assert _stamps(forward) == _stamps(new)
    backward = apply_script(new.copy(), script.invert())
    assert backward.equals_deep(old)
    assert _stamps(backward) == _stamps(old)
    return old, new, script


def _stamps(tree):
    return [(n.xid, n.tstamp) for n in tree.iter()]


class TestMatching:
    def test_identical_trees_fully_matched(self):
        old = _stamped("<g><r><n>A</n></r></g>")
        new = parse("<g><r><n>A</n></r></g>")
        matching = match_trees(old, new)
        assert len(matching) == old.subtree_size()

    def test_value_change_keeps_element_match(self):
        old = _stamped("<g><r><n>A</n><p>15</p></r></g>")
        new = parse("<g><r><n>A</n><p>18</p></r></g>")
        matching = match_trees(old, new)
        old_price = Path("r/p").first(old)
        new_price = Path("r/p").first(new)
        assert matching.new_for(old_price) is new_price

    def test_different_root_tags_no_match(self):
        old = _stamped("<a/>")
        assert len(match_trees(old, parse("<b/>"))) == 0

    def test_inserted_wrap_degrades_to_fresh_subtree(self):
        # Wrapping existing content in a new element: connectedness pass
        # makes the wrapped copy entirely fresh.
        old = _stamped("<g><n>A</n></g>")
        new = parse("<g><wrap><n>A</n></wrap></g>")
        matching = match_trees(old, new)
        wrap = new.children[0]
        inner = wrap.children[0]
        assert not matching.has_new(wrap)
        assert not matching.has_new(inner)


class TestDiffScenarios:
    def test_no_change_empty_script(self):
        old, new, script = _roundtrip("<g><r>x</r></g>", "<g><r>x</r></g>")
        assert script.is_empty

    def test_text_update(self):
        _old, _new, script = _roundtrip(
            "<g><p>15</p></g>", "<g><p>18</p></g>"
        )
        kinds = [type(op) for op in script]
        assert UpdateTextOp in kinds
        assert InsertOp not in kinds and DeleteOp not in kinds

    def test_insert(self):
        _old, new, script = _roundtrip(
            "<g><r><n>A</n></r></g>",
            "<g><r><n>A</n></r><r><n>B</n></r></g>",
        )
        inserts = [op for op in script if isinstance(op, InsertOp)]
        assert len(inserts) == 1
        assert inserts[0].payload.find("n").text == "B"

    def test_delete(self):
        _old, _new, script = _roundtrip(
            "<g><r><n>A</n></r><r><n>B</n></r></g>",
            "<g><r><n>A</n></r></g>",
        )
        deletes = [op for op in script if isinstance(op, DeleteOp)]
        assert len(deletes) == 1
        assert deletes[0].payload.find("n").text == "B"

    def test_reorder_uses_moves(self):
        _old, _new, script = _roundtrip(
            "<g><a>1</a><b>2</b></g>", "<g><b>2</b><a>1</a></g>"
        )
        assert any(isinstance(op, MoveOp) for op in script)
        assert not any(
            isinstance(op, (InsertOp, DeleteOp)) for op in script
        )

    def test_move_across_parents(self):
        old = _stamped("<g><box1><item>x</item></box1><box2/></g>")
        item_xid = Path("box1/item").first(old).xid
        new = parse("<g><box1/><box2><item>x</item></box2></g>")
        script = diff(old, new, XIDAllocator(100), commit_ts=200)
        moved = Path("box2/item").first(new)
        assert moved.xid == item_xid  # identity survived the move
        assert apply_script(old.copy(), script).equals_deep(new)

    def test_attribute_changes(self):
        _old, _new, script = _roundtrip(
            '<g><r k="1" gone="x">t</r></g>',
            '<g><r k="2" fresh="y">t</r></g>',
        )
        attr_ops = {op.name: op for op in script if isinstance(op, UpdateAttrOp)}
        assert attr_ops["k"].old == "1" and attr_ops["k"].new == "2"
        assert attr_ops["gone"].new is None
        assert attr_ops["fresh"].old is None

    def test_root_tag_change_replaces_root(self):
        old = _stamped("<a><x/></a>")
        new = parse("<b><x/></b>")
        script = diff(old, new, XIDAllocator(100), commit_ts=200)
        assert len(script) == 1
        assert isinstance(script.ops[0], ReplaceRootOp)
        result = apply_script(old.copy(), script)
        assert result.equals_deep(new)
        back = apply_script(result, script.invert())
        assert back.equals_deep(old)

    def test_combined_changes(self):
        _roundtrip(
            "<g><r><n>Napoli</n><p>15</p></r>"
            "<r><n>Roma</n><p>20</p></r></g>",
            "<g><r><n>Roma</n><p>22</p></r>"
            "<r><n>Napoli</n><p>15</p></r>"
            "<r><n>Akropolis</n><p>13</p></r></g>",
        )

    def test_mixed_content_changes(self):
        _roundtrip(
            "<p>one<b>two</b>three</p>", "<p>one<b>TWO</b>four</p>"
        )


class TestIdentityPersistence:
    def test_unchanged_elements_keep_xids(self):
        alloc = XIDAllocator()
        old = _stamped("<g><r><n>A</n></r><r><n>B</n></r></g>", alloc)
        new = parse("<g><r><n>A</n></r><r><n>B</n></r><r><n>C</n></r></g>")
        diff(old, new, alloc, commit_ts=200)
        for index in range(2):
            assert (
                new.child_elements()[index].xid
                == old.child_elements()[index].xid
            )

    def test_fresh_elements_get_new_xids(self):
        alloc = XIDAllocator()
        old = _stamped("<g><r>A</r></g>", alloc)
        highest = max(n.xid for n in old.iter())
        new = parse("<g><r>A</r><s>B</s></g>")
        diff(old, new, alloc, commit_ts=200)
        fresh = new.child_elements()[1]
        assert fresh.xid > highest

    def test_deleted_xid_never_reused(self):
        alloc = XIDAllocator()
        old = _stamped("<g><r>A</r><r>B</r></g>", alloc)
        gone_xid = old.child_elements()[1].xid
        middle = parse("<g><r>A</r></g>")
        diff(old, middle, alloc, commit_ts=200)
        final = parse("<g><r>A</r><r>B</r></g>")
        diff(middle, final, alloc, commit_ts=300)
        reintroduced = final.child_elements()[1]
        assert reintroduced.xid != gone_xid


class TestTimestampMaintenance:
    def test_changed_paths_touched(self):
        alloc = XIDAllocator()
        old = _stamped("<g><r><n>A</n><p>15</p></r><r><n>B</n></r></g>", alloc)
        new = parse("<g><r><n>A</n><p>18</p></r><r><n>B</n></r></g>")
        diff(old, new, alloc, commit_ts=200)
        changed_price = Path("r/p").first(new)
        assert changed_price.tstamp == 200
        assert changed_price.parent.tstamp == 200
        assert new.tstamp == 200
        untouched = new.child_elements()[1]
        assert untouched.tstamp == 100

    def test_invariant_holds_after_diff(self):
        alloc = XIDAllocator()
        old = _stamped("<g><a>1</a><b>2</b></g>", alloc)
        new = parse("<g><b>2</b><a>9</a><c>3</c></g>")
        diff(old, new, alloc, commit_ts=200)
        assert verify_timestamp_invariant(new) == []

    def test_no_commit_ts_leaves_stamps_alone(self):
        alloc = XIDAllocator()
        old = _stamped("<g><p>15</p></g>", alloc)
        new = parse("<g><p>18</p></g>")
        script = diff(old, new, alloc)
        assert not any(op.__class__.__name__ == "StampOp" for op in script)


class TestDiffErrors:
    def test_rejects_non_elements(self):
        with pytest.raises(DiffError):
            diff("not a tree", parse("<a/>"))

    def test_rejects_unstamped_old_tree(self):
        with pytest.raises(DiffError):
            diff(parse("<a><b/></a>"), parse("<a/>"))
