"""Tests for the paged-disk simulator."""

import pytest

from repro.errors import StorageError
from repro.storage.page import CounterSnapshot, DiskSimulator, Extent


class TestAllocation:
    def test_pages_for_rounds_up(self):
        disk = DiskSimulator(page_size=4096)
        assert disk.pages_for(0) == 1
        assert disk.pages_for(1) == 1
        assert disk.pages_for(4096) == 1
        assert disk.pages_for(4097) == 2

    def test_pages_for_negative(self):
        with pytest.raises(StorageError):
            DiskSimulator().pages_for(-1)

    def test_bad_page_size(self):
        with pytest.raises(StorageError):
            DiskSimulator(page_size=0)

    def test_allocation_accounts_write(self):
        disk = DiskSimulator()
        disk.allocate(10000)
        assert disk.pages_written == 3
        assert disk.writes == 1
        assert disk.seeks == 1


class TestClustering:
    def test_clustered_same_key_is_contiguous(self):
        disk = DiskSimulator(clustered=True)
        first = disk.allocate(4096, cluster_key="doc1")
        second = disk.allocate(4096, cluster_key="doc1")
        assert second.start_page == first.end_page

    def test_clustered_chain_read_costs_one_seek(self):
        disk = DiskSimulator(clustered=True)
        extents = [disk.allocate(4096, cluster_key="d") for _ in range(10)]
        before = disk.snapshot()
        for extent in extents:
            disk.read(extent)
        cost = disk.snapshot() - before
        assert cost.seeks == 1
        assert cost.pages_read == 10

    def test_unclustered_chain_read_seeks_every_time(self):
        disk = DiskSimulator(clustered=False)
        extents = [disk.allocate(4096, cluster_key="d") for _ in range(10)]
        before = disk.snapshot()
        for extent in extents:
            disk.read(extent)
        cost = disk.snapshot() - before
        assert cost.seeks == 10

    def test_different_keys_separate_arenas(self):
        disk = DiskSimulator(clustered=True)
        a = disk.allocate(4096, cluster_key="a")
        b = disk.allocate(4096, cluster_key="b")
        a2 = disk.allocate(4096, cluster_key="a")
        assert a2.start_page == a.end_page
        assert b.start_page != a.end_page


class TestAccounting:
    def test_read_requires_extent(self):
        with pytest.raises(StorageError):
            DiskSimulator().read("nope")

    def test_sequential_read_no_extra_seek(self):
        disk = DiskSimulator(clustered=True)
        first = disk.allocate(4096, cluster_key="k")
        second = disk.allocate(4096, cluster_key="k")
        disk.read(first)
        seeks_before = disk.seeks
        disk.read(second)  # directly after first: sequential
        assert disk.seeks == seeks_before

    def test_overwrite_counts_writes(self):
        disk = DiskSimulator()
        extent = disk.allocate(100)
        disk.overwrite(extent)
        assert disk.writes == 2

    def test_snapshot_diff(self):
        disk = DiskSimulator()
        before = disk.snapshot()
        disk.read(disk.allocate(100))
        cost = disk.snapshot() - before
        assert cost.reads == 1 and cost.writes == 1
        assert isinstance(cost, CounterSnapshot)

    def test_cost_of_context_manager(self):
        disk = DiskSimulator()
        extent = disk.allocate(100)
        with disk.cost_of() as region:
            disk.read(extent)
        assert region.result.reads == 1
        assert region.result.writes == 0

    def test_estimated_ms_model(self):
        cost = CounterSnapshot(2, 10, 0, 1, 0)
        assert cost.estimated_ms(seek_ms=8.0, page_ms=0.1) == 17.0

    def test_extent_end_page(self):
        assert Extent(10, 3).end_page == 13

    def test_determinism_per_seed(self):
        one = DiskSimulator(seed=42)
        two = DiskSimulator(seed=42)
        assert one.allocate(10) == two.allocate(10)
