"""Tests for DOCTIME() in TXQL — the third time aspect queryable."""

import pytest

from repro import TemporalXMLDatabase
from repro.clock import parse_date
from repro.errors import QueryPlanError


@pytest.fixture
def newsdb():
    db = TemporalXMLDatabase()
    db.put(
        "a.xml",
        "<news><pubdate>10/01/2001</pubdate><h>first</h></news>",
        ts=parse_date("12/01/2001"),
    )
    db.put(
        "b.xml",
        "<news><pubdate>20/01/2001</pubdate><h>second</h></news>",
        ts=parse_date("21/01/2001"),
    )
    db.put("c.xml", "<news><h>undated</h></news>", ts=parse_date("22/01/2001"))
    return db


class TestDoctimeFunction:
    def test_extracts_document_time(self, newsdb):
        result = newsdb.query('SELECT DOCTIME(N) FROM doc("a.xml") N')
        assert int(result.rows[0]["DOCTIME(N)"]) == parse_date("10/01/2001")

    def test_none_when_absent(self, newsdb):
        result = newsdb.query('SELECT DOCTIME(N) FROM doc("c.xml") N')
        assert result.rows[0]["DOCTIME(N)"] is None

    def test_filter_by_document_time(self, newsdb):
        result = newsdb.query(
            'SELECT N/h FROM doc("*.xml") N '
            "WHERE DOCTIME(N) >= 15/01/2001"
        )
        headlines = [
            v.node.text_content() for r in result for v in r["N/h"]
        ]
        assert headlines == ["second"]

    def test_document_time_vs_transaction_time(self, newsdb):
        # Posted strictly before stored: true for both dated documents.
        result = newsdb.query(
            'SELECT N/h FROM doc("*.xml") N WHERE DOCTIME(N) < TIME(N)'
        )
        assert len(result) == 2

    def test_doctime_lag_arithmetic(self, newsdb):
        # Crawled more than a day after posting: a.xml (2 days lag) only.
        result = newsdb.query(
            'SELECT N/h FROM doc("*.xml") N '
            "WHERE TIME(N) - 1 DAYS >= DOCTIME(N) + 1 DAYS"
        )
        headlines = [
            v.node.text_content() for r in result for v in r["N/h"]
        ]
        assert headlines == ["first"]

    def test_doctime_requires_binding(self, newsdb):
        with pytest.raises(QueryPlanError):
            newsdb.query('SELECT DOCTIME(N/h) FROM doc("a.xml") N')

    def test_doctime_of_historical_version(self):
        db = TemporalXMLDatabase()
        db.put(
            "a.xml",
            "<news><pubdate>01/01/2001</pubdate><h>v1</h></news>",
            ts=parse_date("02/01/2001"),
        )
        db.update(
            "a.xml",
            "<news><pubdate>05/01/2001</pubdate><h>v2</h></news>",
            ts=parse_date("06/01/2001"),
        )
        result = db.query(
            'SELECT DOCTIME(N) FROM doc("a.xml")[03/01/2001] N'
        )
        assert int(result.rows[0]["DOCTIME(N)"]) == parse_date("01/01/2001")
        result = db.query(
            'SELECT DISTINCT DOCTIME(N) FROM doc("a.xml")[EVERY] N'
        )
        assert len(result) == 2
