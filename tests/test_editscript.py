"""Tests for edit-script operations: inversion and XML round-trip."""

import pytest

from repro.diff.editscript import (
    DeleteOp,
    EditScript,
    InsertOp,
    MoveOp,
    ReplaceRootOp,
    StampOp,
    UpdateAttrOp,
    UpdateTextOp,
    decode_payload,
    encode_payload,
)
from repro.errors import DeltaApplicationError
from repro.model.identifiers import XIDAllocator
from repro.model.versioned import stamp_new_nodes
from repro.xmlcore import element, parse, serialize
from repro.xmlcore.node import Text


def _stamped(tree, ts=100):
    stamp_new_nodes(tree, XIDAllocator(), ts)
    return tree


class TestOpInversion:
    def test_insert_delete_are_inverses(self):
        payload = _stamped(element("r"))
        op = InsertOp(1, 0, payload)
        assert op.invert() == DeleteOp(1, 0, payload)
        assert op.invert().invert() == op

    def test_move_inverse_swaps_endpoints(self):
        op = MoveOp(5, 1, 0, 2, 3)
        assert op.invert() == MoveOp(5, 2, 3, 1, 0)

    def test_update_text_inverse(self):
        assert UpdateTextOp(3, "15", "18").invert() == UpdateTextOp(3, "18", "15")

    def test_attr_inverse_handles_none(self):
        add = UpdateAttrOp(2, "k", None, "v")
        assert add.invert() == UpdateAttrOp(2, "k", "v", None)

    def test_stamp_inverse(self):
        assert StampOp(1, 10, 20).invert() == StampOp(1, 20, 10)

    def test_script_invert_reverses_order(self):
        ops = [UpdateTextOp(1, "a", "b"), UpdateTextOp(2, "c", "d")]
        script = EditScript(ops, from_ts=10, to_ts=20)
        inverse = script.invert()
        assert [op.xid for op in inverse] == [2, 1]
        assert inverse.from_ts == 20 and inverse.to_ts == 10


class TestPayloadEncoding:
    def test_element_roundtrip(self):
        tree = _stamped(element("r", element("n", "Napoli"), price="15"))
        decoded = decode_payload(encode_payload(tree))
        assert decoded.equals_deep(tree)
        assert [(n.xid, n.tstamp) for n in decoded.iter()] == [
            (n.xid, n.tstamp) for n in tree.iter()
        ]

    def test_text_roundtrip(self):
        text = Text("hello")
        text.xid = 9
        text.tstamp = 5
        decoded = decode_payload(encode_payload(text))
        assert decoded.value == "hello"
        assert decoded.xid == 9 and decoded.tstamp == 5

    def test_attribute_names_cannot_clash_with_envelope(self):
        # An element whose *own* attributes are named like the envelope's.
        from repro.xmlcore.node import Element

        tree = _stamped(Element("e", {"tag": "sneaky", "x": "1", "ts": "2"}))
        decoded = decode_payload(encode_payload(tree))
        assert decoded.attrib == {"tag": "sneaky", "x": "1", "ts": "2"}

    def test_bad_payload_rejected(self):
        with pytest.raises(DeltaApplicationError):
            decode_payload(element("wrong"))


class TestScriptXML:
    def _sample_script(self):
        return EditScript(
            [
                InsertOp(1, 0, _stamped(element("r", element("n", "X")))),
                DeleteOp(1, 2, _stamped(element("old"), ts=50)),
                MoveOp(4, 1, 0, 2, 1),
                UpdateTextOp(5, "15", "18"),
                UpdateAttrOp(6, "state", "open", None),
                UpdateAttrOp(6, "new", None, "yes"),
                StampOp(1, 100, 200),
                ReplaceRootOp(
                    _stamped(element("a")), _stamped(element("b"))
                ),
            ],
            from_ts=100,
            to_ts=200,
        )

    def test_xml_roundtrip(self):
        script = self._sample_script()
        again = EditScript.from_xml(script.to_xml())
        assert len(again) == len(script)
        assert again.from_ts == 100 and again.to_ts == 200
        for original, decoded in zip(script, again):
            assert type(original) is type(decoded)

    def test_xml_roundtrip_through_text(self):
        script = self._sample_script()
        text = serialize(script.to_xml())
        again = EditScript.from_xml(parse(text))
        assert again.summary() == script.summary()

    def test_rejects_non_delta(self):
        with pytest.raises(DeltaApplicationError):
            EditScript.from_xml(element("nope"))

    def test_rejects_unknown_op(self):
        bad = element("delta", element("explode"))
        with pytest.raises(DeltaApplicationError):
            EditScript.from_xml(bad)

    def test_summary_counts(self):
        summary = self._sample_script().summary()
        assert summary["UpdateAttrOp"] == 2
        assert summary["InsertOp"] == 1

    def test_size_bytes_positive(self):
        assert self._sample_script().size_bytes() > 50

    def test_empty_script(self):
        script = EditScript()
        assert script.is_empty
        assert len(script) == 0
        assert EditScript.from_xml(script.to_xml()).is_empty
