"""Smoke tests: every example script must run and produce its key output."""

import runpy
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run_example("quickstart.py", capsys)
        assert "snapshot at 06/03/2001" in out
        assert "<results>" in out
        assert "A1" in out and "B2" in out

    def test_restaurant_guide(self, capsys):
        out = _run_example("restaurant_guide.py", capsys)
        assert "count = 2" in out
        assert "(delta reads: 0)" in out  # the Q2 claim, visible in output
        assert "Akropolis" in out
        assert "['Napoli']" in out

    def test_web_warehouse(self, capsys):
        out = _run_example("web_warehouse.py", capsys)
        assert "crawl campaign report" in out
        assert "capture ratio" in out
        assert "document time" in out or "document-time" in out

    def test_change_audit(self, capsys):
        out = _run_example("change_audit.py", capsys)
        assert "DocHistory" in out
        assert "created:" in out
        assert "delta reads:" in out

    def test_price_rollup(self, capsys):
        out = _run_example("price_rollup.py", capsys)
        assert "constant-price periods" in out
        assert "rewriter off" in out and "rewriter on" in out

    def test_rewriter_saves_delta_reads_in_rollup(self, capsys):
        out = _run_example("price_rollup.py", capsys)
        import re

        off = int(re.search(r"rewriter off: \d+ rows, (\d+) delta", out).group(1))
        on = int(re.search(r"rewriter on : \d+ rows, (\d+) delta", out).group(1))
        assert on < off
