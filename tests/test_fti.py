"""Tests for the temporal full-text index (alternative 1)."""

import pytest

from repro.clock import UNTIL_CHANGED
from repro.index import TemporalFullTextIndex, tokenize
from repro.index.postings import occurrences
from repro.model.identifiers import XIDAllocator
from repro.model.versioned import stamp_new_nodes
from repro.storage import TemporalDocumentStore
from repro.workload import load_figure1
from repro.xmlcore import parse

from tests.conftest import JAN_01, JAN_26, JAN_31


@pytest.fixture
def indexed_store():
    store = TemporalDocumentStore()
    fti = store.subscribe(TemporalFullTextIndex())
    load_figure1(store)
    return store, fti


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Napoli, the Best!") == ["napoli", "the", "best"]

    def test_numbers_are_terms(self):
        assert tokenize("price: 15") == ["price", "15"]

    def test_hyphen_breaks_underscore_kept(self):
        assert tokenize("well-known my_tag") == ["well", "known", "my_tag"]

    def test_empty(self):
        assert tokenize("  ,;  ") == []


class TestOccurrences:
    def test_element_names_indexed(self):
        tree = parse("<guide><restaurant><name>Napoli</name></restaurant></guide>")
        stamp_new_nodes(tree, XIDAllocator(), 1)
        occ = occurrences(tree, doc_id=1)
        words = {word for word, _xid, _ord in occ}
        assert {"guide", "restaurant", "name", "napoli"} <= words

    def test_text_attributed_to_containing_element(self):
        tree = parse("<a><b>word</b></a>")
        stamp_new_nodes(tree, XIDAllocator(), 1)
        occ = occurrences(tree, doc_id=1)
        b_xid = tree.children[0].xid
        assert ("word", b_xid, 0) in occ

    def test_attribute_values_indexed(self):
        tree = parse('<a city="Trondheim"/>')
        stamp_new_nodes(tree, XIDAllocator(), 1)
        occ = occurrences(tree, doc_id=1)
        assert ("trondheim", tree.xid, 0) in occ

    def test_repeated_words_get_ordinals(self):
        tree = parse("<a>again again</a>")
        stamp_new_nodes(tree, XIDAllocator(), 1)
        occ = occurrences(tree, doc_id=1)
        assert ("again", tree.xid, 0) in occ
        assert ("again", tree.xid, 1) in occ

    def test_ancestors_and_paths(self):
        tree = parse("<g><r><n>X</n></r></g>")
        stamp_new_nodes(tree, XIDAllocator(), 1)
        occ = occurrences(tree, doc_id=1)
        n_xid = tree.children[0].children[0].xid
        ancestors, path = occ[("x", n_xid, 0)]
        assert ancestors == (tree.xid, tree.children[0].xid)
        assert path == "g/r/n"


class TestLookups:
    def test_lookup_current_only(self, indexed_store):
        _store, fti = indexed_store
        assert len(fti.lookup("napoli")) == 1
        assert fti.lookup("akropolis") == []  # closed on Jan 31

    def test_lookup_t_snapshots(self, indexed_store):
        _store, fti = indexed_store
        assert len(fti.lookup_t("akropolis", JAN_26)) == 1
        assert fti.lookup_t("akropolis", JAN_31) == []
        assert fti.lookup_t("napoli", JAN_01) != []
        assert fti.lookup_t("napoli", JAN_01 - 5) == []

    def test_lookup_h_whole_history(self, indexed_store):
        _store, fti = indexed_store
        # Price 15 existed (closed), price 18 exists (open): history sees both.
        assert len(fti.lookup_h("15")) == 1
        assert len(fti.lookup_h("18")) == 1
        assert fti.lookup("15") == []
        assert len(fti.lookup("18")) == 1

    def test_posting_intervals_match_versions(self, indexed_store):
        _store, fti = indexed_store
        fifteen = fti.lookup_h("15")[0]
        assert fifteen.start == JAN_01
        assert fifteen.end == JAN_31
        eighteen = fti.lookup_h("18")[0]
        assert eighteen.start == JAN_31
        assert eighteen.end == UNTIL_CHANGED

    def test_unchanged_content_has_single_interval_posting(
        self, indexed_store
    ):
        _store, fti = indexed_store
        # "napoli" survived all three versions: one posting, not three.
        assert len(fti.lookup_h("napoli")) == 1

    def test_unknown_word(self, indexed_store):
        _store, fti = indexed_store
        assert fti.lookup("zebra") == []
        assert fti.lookup_t("zebra", JAN_26) == []
        assert fti.lookup_h("zebra") == []


class TestMaintenance:
    def test_document_delete_closes_postings(self, indexed_store):
        store, fti = indexed_store
        store.delete("guide.com")
        assert fti.lookup("napoli") == []
        assert len(fti.lookup_h("napoli")) == 1

    def test_move_reopens_posting_with_new_ancestors(self):
        store = TemporalDocumentStore()
        fti = store.subscribe(TemporalFullTextIndex())
        store.put("d.xml", "<g><box1><item>gold</item></box1><box2/></g>")
        store.update("d.xml", "<g><box1/><box2><item>gold</item></box2></g>")
        postings = fti.lookup_h("gold")
        assert len(postings) == 2  # closed under box1, open under box2
        open_postings = [p for p in postings if p.is_open]
        assert len(open_postings) == 1

    def test_stats_track_postings(self, indexed_store):
        _store, fti = indexed_store
        stats = fti.stats
        assert stats.postings == fti.posting_count()
        assert stats.postings_opened >= stats.postings_closed
        assert fti.estimated_bytes() > 0

    def test_words_listing(self, indexed_store):
        _store, fti = indexed_store
        assert "restaurant" in fti.words()
