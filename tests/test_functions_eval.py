"""Edge-case tests for the expression evaluator and errors module."""

import pytest

from repro.errors import (
    DeltaApplicationError,
    NoSuchDocumentError,
    QueryPlanError,
    QuerySyntaxError,
    TemporalXMLError,
    TimeError,
    XMLSyntaxError,
)
from repro.query import QueryOptions
from repro.query.parser import parse_query



class TestErrorHierarchy:
    def test_all_derive_from_base(self):
        for exc in (
            XMLSyntaxError("x"),
            QuerySyntaxError("q"),
            QueryPlanError("p"),
            NoSuchDocumentError("d"),
            DeltaApplicationError("a"),
            TimeError("t"),
        ):
            assert isinstance(exc, TemporalXMLError)

    def test_xml_error_location_formatting(self):
        exc = XMLSyntaxError("bad", line=3, column=7)
        assert "line 3" in str(exc) and "column 7" in str(exc)
        assert str(XMLSyntaxError("bad")) == "bad"

    def test_query_error_position(self):
        exc = QuerySyntaxError("bad", position=12)
        assert "position 12" in str(exc)
        assert exc.position == 12


class TestFunctionEdgeCases:
    def test_time_of_non_variable_rejected(self, figure1_db):
        with pytest.raises(QueryPlanError):
            figure1_db.query(
                'SELECT TIME(R/name) FROM doc("guide.com")/restaurant R'
            )

    def test_unknown_function_rejected_at_parse(self):
        # FROBNICATE is not a function, so it parses as a variable followed
        # by junk and fails.
        with pytest.raises(QuerySyntaxError):
            parse_query(
                'SELECT FROBNICATE(R) FROM doc("g")/restaurant R'
            )

    def test_diff_with_missing_side_is_none(self, figure1_db):
        # PREVIOUS of the first version is None -> DIFF returns None.
        result = figure1_db.query(
            'SELECT DIFF(PREVIOUS(R), R) '
            'FROM doc("guide.com")[01/01/2001]/restaurant R'
        )
        assert result.rows[0]["DIFF(PREVIOUS(R), R)"] is None

    def test_diff_arity(self, figure1_db):
        with pytest.raises(QueryPlanError):
            figure1_db.query(
                'SELECT DIFF(R) FROM doc("guide.com")/restaurant R'
            )

    def test_similarity_function_returns_score(self, figure1_db):
        result = figure1_db.query(
            'SELECT SIMILARITY(R, R) FROM doc("guide.com")/restaurant R'
        )
        assert result.rows[0]["SIMILARITY(R, R)"] == pytest.approx(1.0)

    def test_exists_function(self, figure1_db):
        result = figure1_db.query(
            'SELECT EXISTS(R/price) FROM doc("guide.com")/restaurant R'
        )
        assert result.rows[0]["EXISTS(R/price)"] is True
        result = figure1_db.query(
            'SELECT EXISTS(R/phone) FROM doc("guide.com")/restaurant R'
        )
        assert result.rows[0]["EXISTS(R/phone)"] is False

    def test_next_of_current_is_none(self, figure1_db):
        result = figure1_db.query(
            'SELECT NEXT(R) FROM doc("guide.com")/restaurant R'
        )
        assert result.rows[0]["NEXT(R)"] is None

    def test_current_of_deleted_document_is_none(self, figure1_db):
        figure1_db.delete("guide.com")
        result = figure1_db.query(
            'SELECT CURRENT(R) '
            'FROM doc("guide.com")[26/01/2001]/restaurant R'
        )
        assert all(row["CURRENT(R)"] is None for row in result)

    def test_navigation_skips_vanished_elements(self, figure1_db):
        # Akropolis has no NEXT version containing it (deleted on 31/01).
        result = figure1_db.query(
            'SELECT NEXT(R) FROM doc("guide.com")[15/01/2001]/restaurant R '
            'WHERE R/name = "Akropolis"'
        )
        assert result.rows[0]["NEXT(R)"] is None


class TestComparisonEdgeCases:
    def test_none_comparisons_false(self, figure1_db):
        # DELETE TIME of a live element is None; comparisons with None fail.
        result = figure1_db.query(
            'SELECT R/name FROM doc("guide.com")/restaurant R '
            "WHERE DELETE TIME(R) < 01/01/2002"
        )
        assert len(result) == 0

    def test_mixed_type_ordering_false(self, figure1_db):
        result = figure1_db.query(
            'SELECT R/name FROM doc("guide.com")/restaurant R '
            'WHERE R/name < 10'
        )
        assert len(result) == 0

    def test_string_ordering(self, figure1_db):
        result = figure1_db.query(
            'SELECT R/name FROM doc("guide.com")[26/01/2001]/restaurant R '
            'WHERE R/name < "Nap"'
        )
        rows = [v.node.text for r in result for v in r["R/name"]]
        assert rows == ["Akropolis"]

    def test_empty_node_set_comparisons_false(self, figure1_db):
        result = figure1_db.query(
            'SELECT R FROM doc("guide.com")/restaurant R '
            "WHERE R/phone = 5"
        )
        assert len(result) == 0

    def test_arithmetic_on_non_numeric_is_none(self, figure1_db):
        result = figure1_db.query(
            'SELECT R FROM doc("guide.com")/restaurant R '
            "WHERE R/name + 1 > 0"
        )
        assert len(result) == 0

    def test_numeric_plus_in_where(self, figure1_db):
        result = figure1_db.query(
            'SELECT R/name FROM doc("guide.com")/restaurant R '
            "WHERE R/price + 2 = 20"
        )
        assert len(result) == 1

    def test_identity_against_scalar_false(self, figure1_db):
        result = figure1_db.query(
            'SELECT R FROM doc("guide.com")/restaurant R WHERE R == 5'
        )
        assert len(result) == 0


class TestEngineConfiguration:
    def test_index_strategy_requires_lifetime(self, figure1_db):
        from repro.query import QueryEngine

        with pytest.raises(QueryPlanError):
            QueryEngine(
                figure1_db.store,
                options=QueryOptions(lifetime_strategy="index"),
            )

    def test_traverse_strategy_without_index_works(self, figure1_db):
        from repro.query import QueryEngine

        engine = QueryEngine(
            figure1_db.store,
            fti=figure1_db.fti,
            options=QueryOptions(lifetime_strategy="traverse"),
        )
        result = engine.execute(
            'SELECT CREATE TIME(R) '
            'FROM doc("guide.com")[26/01/2001]/restaurant R'
        )
        assert len(result) == 2

    def test_engine_without_fti_navigates(self, figure1_db):
        from repro.query import QueryEngine

        engine = QueryEngine(figure1_db.store)
        result = engine.execute(
            'SELECT R/name FROM doc("guide.com")[26/01/2001]/restaurant R'
        )
        assert len(result) == 2
