"""Equivalence harness: the streaming hash join vs. the seed nested loop.

The overhauled :func:`structural_join` must produce the *identical* match
set — ``(doc_id, xids, interval)`` triples — as the paper's backtracking
:func:`nested_loop_join` it replaced, across randomized tdocgen histories
and the edge cases that historically break structural joins (repeated
terms, branching patterns, adjacent intervals, empty lists).
"""

import itertools

import pytest

from repro.clock import SECONDS_PER_DAY, parse_date
from repro.index import JoinStats, TemporalFullTextIndex
from repro.index.postings import Posting
from repro.pattern import (
    Pattern,
    PatternNode,
    nested_loop_join,
    structural_join,
)
from repro.storage import TemporalDocumentStore
from repro.workload.tdocgen import TDocGenerator, build_collection

T0 = parse_date("01/01/2001")

_TAGS = ("section", "item", "entry", "record", "note", "para")


def busiest_tag(fti):
    """The generator tag with the longest history posting list — guaranteed
    non-empty whatever the seed produced."""
    return max(_TAGS, key=lambda tag: len(fti.lookup_h(tag)))


def match_keys(matches):
    return {(m.doc_id, m.xids(), m.interval) for m in matches}


def history_lists(fti, pattern, docs=None):
    return [fti.lookup_h(n.term, docs=docs) for n in pattern.nodes()]


def snapshot_lists(fti, pattern, ts, docs=None):
    return [fti.lookup_t(n.term, ts, docs=docs) for n in pattern.nodes()]


def branch_pattern():
    """A root bound by two children — the shape selectivity reordering
    and the per-edge hash indexes must not confuse."""
    root = PatternNode("doc")
    root.add(PatternNode("section", relationship="descendant"))
    root.add(PatternNode("item", relationship="descendant"))
    return Pattern(root)


PATTERNS = [
    Pattern.from_path("section"),
    Pattern.from_path("section/item"),
    Pattern.from_path("doc//item"),
    branch_pattern(),
]


@pytest.fixture(params=[3, 11, 42])
def generated(request):
    store = TemporalDocumentStore()
    fti = store.subscribe(TemporalFullTextIndex())
    generator = TDocGenerator(seed=request.param, p_update=0.3,
                              p_insert=0.1, p_delete=0.1)
    build_collection(store, n_docs=4, versions_per_doc=6,
                     generator=generator, start_ts=T0)
    return store, fti


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("pattern", PATTERNS, ids=repr)
    def test_history_join_identical(self, generated, pattern):
        _store, fti = generated
        lists = history_lists(fti, pattern)
        old = nested_loop_join(pattern, lists)
        new = list(structural_join(pattern, lists))
        assert match_keys(new) == match_keys(old)
        # Set semantics on both sides: no duplicate keys emitted.
        assert len(match_keys(new)) == len(new)
        assert len(match_keys(old)) == len(old)

    @pytest.mark.parametrize("pattern", PATTERNS, ids=repr)
    @pytest.mark.parametrize("day", [0, 2, 5, 30])
    def test_snapshot_join_identical(self, generated, pattern, day):
        _store, fti = generated
        ts = T0 + day * SECONDS_PER_DAY
        lists = snapshot_lists(fti, pattern, ts)
        old = nested_loop_join(pattern, lists)
        new = list(structural_join(pattern, lists))
        assert match_keys(new) == match_keys(old)

    def test_doc_restriction_identical(self, generated):
        store, fti = generated
        pattern = Pattern.from_path("doc//item")
        docs = {store.doc_id("doc1.xml"), store.doc_id("doc3.xml")}
        restricted = list(
            structural_join(pattern, history_lists(fti, pattern), docs=docs)
        )
        full = nested_loop_join(pattern, history_lists(fti, pattern))
        expected = {k for k in match_keys(full) if k[0] in docs}
        assert match_keys(restricted) == expected

    def test_single_doc_fast_path_identical(self, generated):
        store, fti = generated
        pattern = Pattern.from_path("section/item")
        only = {store.doc_id("doc2.xml")}
        lists = history_lists(fti, pattern)
        fast = list(structural_join(pattern, lists, docs=only))
        slow = [
            m for m in nested_loop_join(pattern, lists)
            if m.doc_id in only
        ]
        assert match_keys(fast) == match_keys(slow)

    def test_probed_never_exceeds_scanned(self, generated):
        _store, fti = generated
        pattern = Pattern.from_path(f"doc//{busiest_tag(fti)}")
        stats = JoinStats()
        list(structural_join(pattern, history_lists(fti, pattern),
                             stats=stats))
        assert stats.candidates_probed <= stats.candidates_scanned
        assert stats.matches_emitted > 0


class TestEdgeCases:
    def test_repeated_terms_in_one_element(self):
        store = TemporalDocumentStore()
        fti = store.subscribe(TemporalFullTextIndex())
        store.put("r.xml", "<doc><item>red red red</item></doc>", ts=T0)
        pattern = Pattern.from_path("item", value="red")
        lists = history_lists(fti, pattern)
        old = nested_loop_join(pattern, lists)
        new = list(structural_join(pattern, lists))
        assert match_keys(new) == match_keys(old)
        assert len(new) == 1  # set semantics collapse the occurrences

    def test_shared_parent_bound_by_two_children(self):
        store = TemporalDocumentStore()
        fti = store.subscribe(TemporalFullTextIndex())
        store.put(
            "s.xml",
            "<doc><section><item>a</item></section>"
            "<section><note>b</note></section></doc>",
            ts=T0,
        )
        root = PatternNode("section")
        root.add(PatternNode("item", relationship="child"))
        root.add(PatternNode("note", relationship="child"))
        pattern = Pattern(root)
        lists = history_lists(fti, pattern)
        old = nested_loop_join(pattern, lists)
        new = list(structural_join(pattern, lists))
        # No section has both an item and a note child.
        assert match_keys(new) == match_keys(old) == set()

    def test_empty_posting_list(self):
        store = TemporalDocumentStore()
        fti = store.subscribe(TemporalFullTextIndex())
        store.put("e.xml", "<doc><item>x</item></doc>", ts=T0)
        pattern = Pattern.from_path("item", value="missing")
        lists = history_lists(fti, pattern)
        assert lists[-1] == []
        assert nested_loop_join(pattern, lists) == []
        assert list(structural_join(pattern, lists)) == []

    def test_adjacent_intervals_do_not_join(self):
        # Parent valid [T0, T0+10); child born exactly at T0+10.  Half-open
        # semantics: no shared instant, no match — and the bisect prune in
        # the hash join must agree with the nested loop's intersect.
        parent = Posting(1, 1, (), "a", T0, T0 + 10)
        adjacent = Posting(1, 2, (1,), "a/b", T0 + 10, T0 + 20)
        overlapping = Posting(1, 3, (1,), "a/b", T0 + 9, T0 + 20)
        root = PatternNode("a")
        root.add(PatternNode("b", relationship="child"))
        pattern = Pattern(root)
        lists = [[parent], [adjacent, overlapping]]
        old = nested_loop_join(pattern, lists)
        new = list(structural_join(pattern, lists))
        assert match_keys(new) == match_keys(old)
        assert len(new) == 1
        assert new[0].interval.start == T0 + 9
        assert new[0].interval.end == T0 + 10  # minimal one-second overlap

    def test_interval_prune_counted(self):
        parent = Posting(1, 1, (), "a", T0, T0 + 10)
        late = [
            Posting(1, 10 + i, (1,), "a/b", T0 + 100 + i, T0 + 200)
            for i in range(5)
        ]
        early = Posting(1, 2, (1,), "a/b", T0, T0 + 5)
        root = PatternNode("a")
        root.add(PatternNode("b", relationship="child"))
        pattern = Pattern(root)
        stats = JoinStats()
        matches = list(
            structural_join(pattern, [[parent], [early] + late], stats=stats)
        )
        assert len(matches) == 1
        # The five late-born children were bisected away without a probe.
        assert stats.intervals_pruned == 5
        assert stats.candidates_probed < stats.candidates_scanned


class TestStreaming:
    def test_early_exit_stops_probing(self, generated):
        _store, fti = generated
        pattern = Pattern.from_path(f"doc//{busiest_tag(fti)}")
        lists = history_lists(fti, pattern)

        full = JoinStats()
        all_matches = list(structural_join(pattern, lists, stats=full))
        assert len(all_matches) > 1

        partial = JoinStats()
        first = list(
            itertools.islice(structural_join(pattern, lists, stats=partial), 1)
        )
        assert len(first) == 1
        assert partial.matches_emitted == 1
        assert partial.candidates_probed < full.candidates_probed

    def test_wrong_arity_raises_before_iteration(self):
        pattern = Pattern.from_path("a/b")
        with pytest.raises(ValueError):
            structural_join(pattern, [[]])
        with pytest.raises(ValueError):
            nested_loop_join(pattern, [[]])
