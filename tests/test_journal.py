"""Unit tests for the commit journal format and the fault-injection shim."""

import pytest

from repro.errors import TornJournalError
from repro.storage import TemporalDocumentStore
from repro.storage.faults import CrashError, FaultyFS, OSFileSystem, flip_bit
from repro.storage.journal import (
    MAGIC,
    CommitJournal,
    JournalRecord,
    scan_journal,
    verify_journal,
)
from repro.storage.recover import recover_store
from repro.xmlcore import Element, serialize


def _journaled_store(tmp_path, fsync_policy="flush"):
    store = TemporalDocumentStore()
    journal = CommitJournal(
        str(tmp_path / "journal.bin"), fsync_policy=fsync_policy
    )
    store.attach_journal(journal)
    return store, journal


class TestRecordFormat:
    def test_round_trip_with_body(self):
        body = Element("delta")
        body.append(Element("stamp", {"xid": "4"}))
        record = JournalRecord(
            kind="update", doc_id=7, name="a b \"quoted\" & <odd>.xml",
            version=3, ts=12345, nextxid=19, body=body,
        )
        back = JournalRecord.from_payload(record.to_payload())
        assert back.kind == "update"
        assert back.doc_id == 7
        assert back.name == record.name
        assert back.version == 3
        assert back.ts == 12345
        assert back.nextxid == 19
        assert serialize(back.body) == serialize(body)

    def test_round_trip_without_body(self):
        record = JournalRecord(
            kind="delete", doc_id=2, name="x.xml", version=5, ts=99
        )
        back = JournalRecord.from_payload(record.to_payload())
        assert back.body is None
        assert back.nextxid is None


class TestJournalFile:
    def test_commits_are_journaled_and_scannable(self, tmp_path):
        store, journal = _journaled_store(tmp_path)
        store.put("a.xml", "<doc><x>one</x></doc>")
        store.update("a.xml", "<doc><x>two</x></doc>")
        store.delete("a.xml")
        journal.close()

        records = verify_journal(str(tmp_path / "journal.bin"))
        assert [r.kind for r in records] == ["create", "update", "delete"]
        assert [r.version for r in records] == [1, 2, 2]
        tree = records[0].initial_tree()
        assert records[0].nextxid > max(n.xid for n in tree.iter())

    def test_snapshot_records_follow_interval_commits(self, tmp_path):
        store = TemporalDocumentStore(snapshot_interval=2)
        journal = CommitJournal(str(tmp_path / "journal.bin"))
        store.attach_journal(journal)
        store.put("a.xml", "<doc><x>one</x></doc>")
        for i in range(3):
            store.update("a.xml", f"<doc><x>rev {i}</x></doc>")
        journal.close()
        kinds = [r.kind for r in verify_journal(str(tmp_path / "journal.bin"))]
        assert kinds == [
            "create", "update", "snapshot", "update", "update", "snapshot",
        ]

    def test_reopen_appends(self, tmp_path):
        store, journal = _journaled_store(tmp_path)
        store.put("a.xml", "<doc><x>one</x></doc>")
        journal.close()
        journal2 = CommitJournal(str(tmp_path / "journal.bin"))
        journal2.append(
            JournalRecord(kind="delete", doc_id=1, name="a.xml", version=1, ts=5)
        )
        journal2.close()
        records = verify_journal(str(tmp_path / "journal.bin"))
        assert [r.kind for r in records] == ["create", "delete"]

    def test_roll_archives_generation(self, tmp_path):
        store, journal = _journaled_store(tmp_path)
        store.put("a.xml", "<doc><x>one</x></doc>")
        journal.roll()
        store.update("a.xml", "<doc><x>two</x></doc>")
        journal.close()
        prev = verify_journal(str(tmp_path / "journal.bin.prev"))
        main = verify_journal(str(tmp_path / "journal.bin"))
        assert [r.kind for r in prev] == ["create"]
        assert [r.kind for r in main] == ["update"]
        assert journal.stats.rolls == 1

    def test_bad_magic_refused_on_open(self, tmp_path):
        path = tmp_path / "journal.bin"
        path.write_bytes(b"this is not a journal at all")
        with pytest.raises(TornJournalError):
            CommitJournal(str(path))

    def test_torn_header_truncated_on_open(self, tmp_path):
        path = tmp_path / "journal.bin"
        path.write_bytes(MAGIC[:3])
        journal = CommitJournal(str(path))
        journal.close()
        assert path.read_bytes() == MAGIC


class TestScan:
    def test_missing_and_empty(self, tmp_path):
        missing = scan_journal(str(tmp_path / "nope.bin"))
        assert missing.records == [] and not missing.torn
        (tmp_path / "empty.bin").write_bytes(b"")
        empty = scan_journal(str(tmp_path / "empty.bin"))
        assert empty.records == [] and not empty.torn

    def test_torn_tail_detected_and_truncatable(self, tmp_path):
        store, journal = _journaled_store(tmp_path)
        store.put("a.xml", "<doc><x>one</x></doc>")
        store.update("a.xml", "<doc><x>two</x></doc>")
        journal.close()
        path = tmp_path / "journal.bin"
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # tear the last record mid-payload

        scan = scan_journal(str(path))
        assert scan.torn
        assert scan.reason == "torn payload"
        assert [r.kind for r in scan.records] == ["create"]
        assert scan.valid_size < len(data) - 7
        with pytest.raises(TornJournalError):
            verify_journal(str(path))

    def test_bit_flip_detected_by_crc(self, tmp_path):
        store, journal = _journaled_store(tmp_path)
        store.put("a.xml", "<doc><x>one</x></doc>")
        store.update("a.xml", "<doc><x>two</x></doc>")
        journal.close()
        path = str(tmp_path / "journal.bin")
        flip_bit(path, OSFileSystem().size(path) - 3)
        scan = scan_journal(path)
        assert scan.torn and scan.reason == "checksum mismatch"
        assert [r.kind for r in scan.records] == ["create"]

    def test_short_read_behaves_like_torn_tail(self, tmp_path):
        store, journal = _journaled_store(tmp_path)
        store.put("a.xml", "<doc><x>one two three</x></doc>")
        store.update("a.xml", "<doc><x>four five</x></doc>")
        journal.close()
        fs = FaultyFS(short_read_at=1, short_read_fraction=0.6)
        scan = scan_journal(str(tmp_path / "journal.bin"), fs=fs)
        assert scan.torn
        assert len(scan.records) <= 1


class TestCommitGroups:
    def _member(self, kind="delete", version=1, ts=10):
        return JournalRecord(
            kind=kind, doc_id=1, name="a.xml", version=version, ts=ts
        )

    def test_group_record_round_trip(self):
        members = [self._member(ts=10), self._member(version=2, ts=11)]
        record = JournalRecord.group(members)
        back = JournalRecord.from_payload(record.to_payload())
        assert back.kind == "group"
        assert len(back.members) == 2
        assert [(m.kind, m.doc_id, m.version, m.ts) for m in back.members] == [
            ("delete", 1, 1, 10), ("delete", 1, 2, 11),
        ]

    def test_empty_and_nested_groups_rejected(self):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            JournalRecord.group([])
        inner = JournalRecord.group([self._member()])
        with pytest.raises(StorageError):
            JournalRecord.group([inner])

    def test_group_is_one_physical_record_one_fsync(self, tmp_path):
        journal = CommitJournal(
            str(tmp_path / "journal.bin"), fsync_policy="commit"
        )
        header_fsyncs = journal.stats.fsyncs
        journal.begin_group()
        assert journal.in_group
        for i in range(5):
            journal.append(self._member(version=i + 1, ts=10 + i))
        assert journal.stats.records_written == 0  # staged, not written
        assert journal.commit_group() == 5
        journal.close()
        assert journal.stats.records_written == 1
        assert journal.stats.fsyncs - header_fsyncs == 2  # group + close
        assert journal.stats.groups_written == 1
        assert journal.stats.group_members == 5
        assert journal.stats.by_kind["delete"] == 5

        records = verify_journal(str(tmp_path / "journal.bin"))
        assert [r.kind for r in records] == ["group"]
        assert len(records[0].members) == 5

    def test_abort_group_leaves_file_untouched(self, tmp_path):
        path = tmp_path / "journal.bin"
        journal = CommitJournal(str(path))
        before = path.read_bytes()
        journal.begin_group()
        journal.append(self._member())
        journal.abort_group()
        journal.close()
        assert path.read_bytes() == before
        assert verify_journal(str(path)) == []

    def test_empty_group_commit_writes_nothing(self, tmp_path):
        path = tmp_path / "journal.bin"
        journal = CommitJournal(str(path))
        journal.begin_group()
        assert journal.commit_group() == 0
        journal.close()
        assert verify_journal(str(path)) == []

    def test_roll_refused_inside_group(self, tmp_path):
        from repro.errors import StorageError

        journal = CommitJournal(str(tmp_path / "journal.bin"))
        journal.begin_group()
        with pytest.raises(StorageError):
            journal.roll()
        journal.abort_group()
        journal.close()

    def test_torn_group_drops_all_members(self, tmp_path):
        path = tmp_path / "journal.bin"
        journal = CommitJournal(str(path))
        journal.append(self._member(ts=5))  # a plain record before the group
        journal.begin_group()
        for i in range(3):
            journal.append(self._member(version=i + 1, ts=10 + i))
        journal.commit_group()
        journal.close()
        data = path.read_bytes()
        path.write_bytes(data[:-5])  # tear inside the group payload

        scan = scan_journal(str(path))
        assert scan.torn
        # All-or-nothing: the whole group vanished, never a member prefix.
        assert [r.kind for r in scan.records] == ["delete"]

    def test_store_batch_journals_one_group(self, tmp_path):
        store = TemporalDocumentStore(snapshot_interval=2)
        journal = CommitJournal(str(tmp_path / "journal.bin"))
        store.attach_journal(journal)
        with store.batch() as batch:
            batch.put("a.xml", "<doc><x>one</x></doc>")
            batch.update("a.xml", "<doc><x>two</x></doc>")
            batch.update("a.xml", "<doc><x>three</x></doc>")
            batch.delete("a.xml")
        journal.close()
        records = verify_journal(str(tmp_path / "journal.bin"))
        assert [r.kind for r in records] == ["group"]
        kinds = [m.kind for m in records[0].members]
        # The deferred snapshot decision (version 2) is journaled inside
        # the same group, after the member commits.
        assert kinds == ["create", "update", "update", "delete", "snapshot"]
        assert [m.version for m in records[0].members] == [1, 2, 3, 3, 2]


class TestFaultyFS:
    def test_crash_at_counts_and_kills(self, tmp_path):
        fs = FaultyFS(crash_at=2)
        handle = fs.open_append(str(tmp_path / "f"))
        fs.write(handle, b"one")
        with pytest.raises(CrashError):
            fs.write(handle, b"twotwotwo")
        with pytest.raises(CrashError):
            fs.read_bytes(str(tmp_path / "f"))
        assert fs.crashed
        assert [name for name, _ in fs.op_log] == ["write", "write"]

    def test_torn_write_leaves_prefix(self, tmp_path):
        fs = FaultyFS(crash_at=1, torn_fraction=0.5)
        handle = fs.open_append(str(tmp_path / "f"))
        with pytest.raises(CrashError):
            fs.write(handle, b"abcdefgh")
        assert (tmp_path / "f").read_bytes() == b"abcd"

    def test_recovery_truncates_short_read_tail(self, tmp_path):
        # A short read during recovery must yield a clean prefix store.
        store, journal = _journaled_store(tmp_path)
        store.put("a.xml", "<doc><x>one</x></doc>")
        store.update("a.xml", "<doc><x>two</x></doc>")
        journal.close()
        fs = FaultyFS(short_read_at=1, short_read_fraction=0.7)
        recovered, report = recover_store(str(tmp_path), fs=fs)
        assert report.torn_tail
        index = recovered.delta_index("a.xml")
        assert len(index) in (1, 2)
