"""Remaining edge cases: crawler re-creation, result rendering, value
coercion, interval rendering, store helpers."""

import pytest

from repro.clock import Interval, UNTIL_CHANGED, parse_date
from repro.equality.value import coerce_scalar
from repro.model.identifiers import EID
from repro.storage import TemporalDocumentStore
from repro.warehouse import Crawler, SimulatedWeb
from repro.xmlcore import Text, element, parse, serialize

DAY = 24 * 3600
T0 = parse_date("01/06/2001")


class TestCrawlerRecreation:
    def test_page_deleted_then_republished_gets_new_identity(self):
        web = SimulatedWeb()
        web.publish("p.com", T0, "<page><v>one</v></page>")
        web.publish("p.com", T0 + DAY, None)
        web.publish("p.com", T0 + 2 * DAY, "<page><v>two</v></page>")
        store = TemporalDocumentStore()
        crawler = Crawler(web, store)
        assert crawler.crawl("p.com", T0) == "created"
        assert crawler.crawl("p.com", T0 + DAY) == "deleted"
        assert crawler.crawl("p.com", T0 + 2 * DAY) == "created"
        # The paper's remark: a re-introduced document is a new object.
        assert store.doc_id("p.com") != 0
        dindex = store.delta_index("p.com")
        assert not dindex.is_deleted
        assert len(dindex) == 1

    def test_absent_page_never_stored(self):
        web = SimulatedWeb()
        store = TemporalDocumentStore()
        crawler = Crawler(web, store)
        assert crawler.crawl("ghost.com", T0) == "absent"
        assert store.documents(include_deleted=True) == []


class TestValueCoercion:
    def test_scalar_paths(self):
        assert coerce_scalar(" 15 ") == 15
        assert coerce_scalar("3.5") == 3.5
        assert coerce_scalar("abc") == "abc"
        assert coerce_scalar(7) == 7

    def test_node_inputs(self):
        assert coerce_scalar(element("p", "42")) == 42
        assert coerce_scalar(Text("2.25")) == 2.25
        nested = element("r", element("a", "1"), element("b", "2"))
        assert coerce_scalar(nested) == 12  # concatenated text content


class TestIntervalRendering:
    def test_str_uses_calendar_dates(self):
        interval = Interval(parse_date("01/01/2001"), parse_date("15/01/2001"))
        assert str(interval) == "[01/01/2001, 15/01/2001)"

    def test_current_interval_renders_uc(self):
        interval = Interval(parse_date("01/01/2001"), UNTIL_CHANGED)
        assert str(interval).endswith("UC)")


class TestResultRendering:
    def test_multi_value_column_wrapped(self, figure1_db):
        result = figure1_db.query(
            'SELECT G/restaurant FROM doc("guide.com")[15/01/2001] G'
        )
        xml = result.to_xml()
        holder = xml.child_elements()[0].child_elements()[0]
        # Two restaurants in one value: kept inside a <value> wrapper.
        assert holder.tag == "value"
        assert len(holder.findall("restaurant")) == 2

    def test_single_element_unwrapped(self, figure1_db):
        result = figure1_db.query(
            'SELECT R FROM doc("guide.com")[01/01/2001]/restaurant R'
        )
        first_result = result.to_xml().child_elements()[0]
        assert first_result.child_elements()[0].tag == "restaurant"

    def test_scalar_rendered_as_text(self, figure1_db):
        result = figure1_db.query(
            'SELECT COUNT(R) FROM doc("guide.com")/restaurant R'
        )
        text = serialize(result.to_xml())
        assert ">1<" in text

    def test_empty_result_table_renders(self, figure1_db):
        result = figure1_db.query(
            'SELECT R FROM doc("guide.com")[01/01/1999]/restaurant R'
        )
        assert "R" in str(result)
        assert result.to_xml().child_elements() == []


class TestStoreHelpers:
    def test_eid_helper(self, figure1_store):
        store, *_ = figure1_store
        assert store.eid("guide.com", 2) == EID(store.doc_id("guide.com"), 2)

    def test_name_of(self, figure1_store):
        store, *_ = figure1_store
        assert store.name_of(store.doc_id("guide.com")) == "guide.com"


class TestParserEntitiesEdge:
    def test_invalid_hex_reference(self):
        from repro.errors import XMLSyntaxError

        with pytest.raises(XMLSyntaxError):
            parse("<a>&#xZZ;</a>")

    def test_doctype_with_internal_subset(self):
        root = parse(
            "<!DOCTYPE g [<!ELEMENT g (r*)>]><g><r/></g>"
        )
        assert root.tag == "g"

    def test_deeply_nested_document(self):
        depth = 200
        text = "".join(f"<n{i}>" for i in range(depth))
        text += "x"
        text += "".join(f"</n{i}>" for i in reversed(range(depth)))
        root = parse(text)
        assert root.subtree_size() == depth + 1
