"""Tests for identifiers and stamping."""

import pytest

from repro.errors import IdentityError
from repro.model.identifiers import EID, TEID, XIDAllocator
from repro.model.versioned import (
    collect_xids,
    max_timestamp,
    stamp_new_nodes,
    touch_upwards,
    verify_timestamp_invariant,
)
from repro.xmlcore import element


class TestXIDAllocator:
    def test_monotonic_from_one(self):
        alloc = XIDAllocator()
        assert [alloc.allocate() for _ in range(3)] == [1, 2, 3]

    def test_never_reuses_after_note(self):
        alloc = XIDAllocator()
        alloc.note_used(10)
        assert alloc.allocate() == 11

    def test_note_ignores_smaller(self):
        alloc = XIDAllocator(5)
        alloc.note_used(2)
        assert alloc.allocate() == 5

    def test_rejects_zero_start(self):
        with pytest.raises(IdentityError):
            XIDAllocator(0)

    def test_resume_state(self):
        alloc = XIDAllocator()
        alloc.allocate()
        resumed = XIDAllocator(alloc.next_xid)
        assert resumed.allocate() == 2


class TestEIDTEID:
    def test_teid_decomposes(self):
        teid = TEID(3, 7, 1000)
        assert teid.eid == EID(3, 7)
        assert teid.timestamp == 1000

    def test_eid_at(self):
        assert EID(3, 7).at(99) == TEID(3, 7, 99)

    def test_ordering_and_hashing(self):
        assert EID(1, 2) < EID(1, 3) < EID(2, 1)
        assert len({TEID(1, 1, 5), TEID(1, 1, 5), TEID(1, 1, 6)}) == 2

    def test_str_forms(self):
        assert str(EID(3, 7)) == "3.7"
        assert "3.7@" in str(TEID(3, 7, 0))


class TestStamping:
    def test_stamps_fresh_nodes(self):
        tree = element("a", element("b", "t"))
        alloc = XIDAllocator()
        fresh = stamp_new_nodes(tree, alloc, 100)
        assert fresh == 3
        assert all(n.xid is not None for n in tree.iter())
        assert all(n.tstamp == 100 for n in tree.iter())

    def test_preserves_existing_xids(self):
        tree = element("a", element("b"))
        tree.xid = 50
        alloc = XIDAllocator()
        stamp_new_nodes(tree, alloc, 100)
        assert tree.xid == 50
        assert tree.children[0].xid == 51  # allocator moved past 50

    def test_collect_xids(self):
        tree = element("a", element("b"))
        stamp_new_nodes(tree, XIDAllocator(), 1)
        index = collect_xids(tree)
        assert set(index) == {1, 2}
        assert index[1] is tree

    def test_collect_rejects_unstamped(self):
        with pytest.raises(IdentityError):
            collect_xids(element("a"))

    def test_collect_rejects_duplicates(self):
        tree = element("a", element("b"))
        tree.xid = 1
        tree.children[0].xid = 1
        tree.tstamp = tree.children[0].tstamp = 0
        with pytest.raises(IdentityError):
            collect_xids(tree)


class TestTimestampInvariant:
    def test_touch_upwards(self):
        tree = element("a", element("b", element("c")))
        stamp_new_nodes(tree, XIDAllocator(), 10)
        c = tree.children[0].children[0]
        touch_upwards(c, 20)
        assert c.tstamp == 20
        assert tree.children[0].tstamp == 20
        assert tree.tstamp == 20

    def test_verify_detects_violation(self):
        tree = element("a", element("b"))
        stamp_new_nodes(tree, XIDAllocator(), 10)
        tree.children[0].tstamp = 99  # child newer than parent
        assert verify_timestamp_invariant(tree) == [tree.xid]

    def test_verify_passes_after_touch(self):
        tree = element("a", element("b", element("c")))
        stamp_new_nodes(tree, XIDAllocator(), 10)
        touch_upwards(tree.children[0].children[0], 42)
        assert verify_timestamp_invariant(tree) == []

    def test_max_timestamp(self):
        tree = element("a", element("b"))
        stamp_new_nodes(tree, XIDAllocator(), 10)
        tree.children[0].tstamp = 33
        assert max_timestamp(tree) == 33
        assert max_timestamp(element("x")) is None
