"""Integration tests over multi-document collections: identity isolation,
cross-document queries, and the FTI under interleaved commits."""

import pytest

from repro.clock import parse_date
from repro.index import LifetimeIndex, TemporalFullTextIndex
from repro.model.identifiers import EID, TEID
from repro.operators import TPatternScan
from repro.pattern import Pattern
from repro.query import QueryEngine
from repro.storage import TemporalDocumentStore

DAY = 24 * 3600
T0 = parse_date("01/05/2001")


@pytest.fixture
def multistore():
    store = TemporalDocumentStore()
    fti = store.subscribe(TemporalFullTextIndex())
    lifetime = store.subscribe(LifetimeIndex())
    # Interleaved commits across three documents.
    store.put("a.xml", "<list><item>red</item></list>", ts=T0)
    store.put("b.xml", "<list><item>red</item><item>blue</item></list>",
              ts=T0 + 1 * DAY)
    store.update("a.xml", "<list><item>green</item></list>", ts=T0 + 2 * DAY)
    store.put("c.xml", "<list><note>red sky</note></list>", ts=T0 + 3 * DAY)
    store.update("b.xml", "<list><item>blue</item></list>", ts=T0 + 4 * DAY)
    store.delete("c.xml", ts=T0 + 5 * DAY)
    return store, fti, lifetime


class TestIdentityIsolation:
    def test_xids_independent_per_document(self, multistore):
        store, _fti, _lifetime = multistore
        a_root = store.current("a.xml")
        b_root = store.current("b.xml")
        # Same XID value can occur in both documents; EIDs differ.
        assert a_root.xid == b_root.xid == 1
        assert EID(store.doc_id("a.xml"), 1) != EID(store.doc_id("b.xml"), 1)

    def test_teids_resolve_to_their_document(self, multistore):
        store, _fti, _lifetime = multistore
        teid_a = TEID(store.doc_id("a.xml"), 1, T0)
        teid_b = TEID(store.doc_id("b.xml"), 1, T0 + DAY)
        assert store.subtree(teid_a).find("item").text == "red"
        assert len(store.subtree(teid_b).findall("item")) == 2


class TestCrossDocumentFTI:
    def test_word_found_in_all_containing_docs(self, multistore):
        store, fti, _lifetime = multistore
        at = T0 + 3 * DAY
        postings = fti.lookup_t("red", at)
        docs = {p.doc_id for p in postings}
        # a.xml dropped "red" at T0+2; b and c carry it at T0+3.
        assert docs == {store.doc_id("b.xml"), store.doc_id("c.xml")}

    def test_current_lookup_reflects_all_closures(self, multistore):
        store, fti, _lifetime = multistore
        # "red" left a.xml by update, b.xml by update, c.xml by document
        # deletion — three different closure paths, all observed.
        assert fti.lookup("red") == []
        blue_docs = {p.doc_id for p in fti.lookup("blue")}
        assert blue_docs == {store.doc_id("b.xml")}
        assert len(fti.lookup_h("red")) == 3

    def test_pattern_scan_with_doc_filter(self, multistore):
        store, fti, _lifetime = multistore
        pattern = Pattern.from_path("item", value="blue")
        at = T0 + 4 * DAY
        all_docs = list(TPatternScan(fti, pattern, at, store=store).teids())
        only_a = list(TPatternScan(
            fti, pattern, at, docs={store.doc_id("a.xml")}, store=store
        ).teids())
        assert len(all_docs) == 1
        assert only_a == []


class TestLifetimeAcrossDocuments:
    def test_spans_keyed_by_eid(self, multistore):
        store, _fti, lifetime = multistore
        c_id = store.doc_id("c.xml")
        assert lifetime.create_time(EID(c_id, 1)) == T0 + 3 * DAY
        assert lifetime.delete_time(EID(c_id, 1)) == T0 + 5 * DAY
        a_id = store.doc_id("a.xml")
        assert lifetime.delete_time(EID(a_id, 1)) is None


class TestCrossDocumentQueries:
    def test_glob_over_every(self, multistore):
        store, fti, _lifetime = multistore
        engine = QueryEngine(store, fti=fti)
        result = engine.execute('SELECT TIME(D) FROM doc("*")[EVERY] D')
        # a: 2 versions, b: 2 versions, c: 1 version.
        assert len(result) == 5

    def test_join_across_documents(self, multistore):
        store, fti, _lifetime = multistore
        engine = QueryEngine(store, fti=fti)
        from repro.clock import format_timestamp

        at = format_timestamp(T0 + 1 * DAY)
        result = engine.execute(
            f'SELECT A, B FROM doc("a.xml")[{at}]/item A, '
            f'doc("b.xml")[{at}]/item B WHERE A = B'
        )
        assert len(result) == 1  # "red" on both sites that day

    def test_snapshot_of_mixed_existence(self, multistore):
        store, fti, _lifetime = multistore
        engine = QueryEngine(store, fti=fti)
        from repro.clock import format_timestamp

        before_c = format_timestamp(T0 + 2 * DAY)
        result = engine.execute(
            f'SELECT D FROM doc("*")[{before_c}] D'
        )
        assert len(result) == 2  # c.xml does not exist yet
