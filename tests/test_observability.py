"""The observability layer: registry, tracer, EXPLAIN ANALYZE.

Covers the PR-5 acceptance criteria directly:

* the span tree of a traced query mirrors the plan tree,
* span counter deltas sum to what a :class:`CostMeter` measures for the
  very same run (one source of truth for logical I/O),
* the disabled tracer allocates no spans and leaves iterables untouched,
* the JSON trace export round-trips,
* two identical back-to-back queries report identical per-query stats —
  the registry's delta protocol replaces the old zoo of ``reset()`` /
  ``reset_query_counters()`` conventions.
"""

from __future__ import annotations

import json

import pytest

from repro import TemporalXMLDatabase
from repro.bench.harness import CostMeter, relative_overhead
from repro.obs import (
    NULL_TRACER,
    ExplainAnalyzeReport,
    Histogram,
    MetricsRegistry,
    NullTracer,
    PlanReport,
    Span,
    Tracer,
)
from repro.workload import load_figure1

NAPOLI_QUERY = (
    'SELECT TIME(R), R/price FROM doc("guide.com")[EVERY]/restaurant R'
    ' WHERE R/name="Napoli"'
)


@pytest.fixture
def db():
    database = TemporalXMLDatabase()
    load_figure1(database)
    return database


# -- MetricsRegistry ----------------------------------------------------------


class TestMetricsRegistry:
    def test_snapshot_merges_sources_under_prefixes(self):
        registry = MetricsRegistry()
        registry.register("a", lambda: {"x": 1, "y": 2})

        class Stats:
            def snapshot(self):
                return {"z": 3, "label": "not-a-number"}

        registry.register("b", Stats())
        snap = registry.snapshot()
        assert snap == {"a.x": 1, "a.y": 2, "b.z": 3}

    def test_delta_counts_new_keys_from_zero(self):
        before = {"a.x": 5}
        after = {"a.x": 7, "a.y": 4}
        assert MetricsRegistry.delta(before, after) == {"a.x": 2, "a.y": 4}

    def test_reject_bad_source(self):
        with pytest.raises(TypeError):
            MetricsRegistry().register("bad", object())

    def test_owned_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("events").inc()
        registry.counter("events").inc(2)
        assert registry.snapshot()["events"] == 3
        histogram = registry.histogram("latency")
        for value in (1.0, 3.0):
            histogram.observe(value)
        assert histogram.count == 2
        assert histogram.mean == 2.0
        assert isinstance(registry.histograms["latency"], Histogram)

    def test_engine_registry_covers_every_subsystem(self, db):
        prefixes = set(db.engine.registry.prefixes)
        assert {"store", "disk", "cache", "anchors", "fti", "lifetime",
                "join"} <= prefixes


# -- stats reset unification --------------------------------------------------


class TestPerQueryStats:
    def test_back_to_back_identical_queries_report_identical_stats(self, db):
        db.query(NAPOLI_QUERY)
        first = db.engine.last_query_stats
        db.query(NAPOLI_QUERY)
        second = db.engine.last_query_stats
        assert first == second
        # and the stats actually contain work, not just zeros
        assert first["fti.lookups"] > 0
        assert first["join.candidates_probed"] > 0

    def test_stats_are_deltas_not_lifetime_totals(self, db):
        db.query(NAPOLI_QUERY)
        per_query = db.engine.last_query_stats["fti.lookups"]
        lifetime_total = db.fti.stats.lookups
        db.query(NAPOLI_QUERY)
        assert db.fti.stats.lookups == lifetime_total + per_query

    def test_collection_can_be_switched_off(self, db):
        db.engine.collect_query_stats = False
        db.engine.last_query_stats = None
        db.query(NAPOLI_QUERY)
        assert db.engine.last_query_stats is None


# -- tracer mechanics ---------------------------------------------------------


class TestTracer:
    def test_span_nesting_follows_with_blocks(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        (root,) = tracer.roots
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner"]
        assert root.complete and root.children[0].complete

    def test_exclusive_metric_attribution(self):
        registry = MetricsRegistry()
        counter = {"n": 0}
        registry.register("c", lambda: dict(counter))
        tracer = Tracer(registry)
        with tracer.span("outer"):
            counter["n"] += 1
            with tracer.span("inner"):
                counter["n"] += 5
            counter["n"] += 2
        (root,) = tracer.roots
        assert root.metrics == {"c.n": 3}  # own work only
        assert root.find("inner").metrics == {"c.n": 5}
        assert root.total_metrics() == {"c.n": 8}

    def test_traced_iter_counts_rows_and_charges_per_step(self):
        registry = MetricsRegistry()
        counter = {"n": 0}
        registry.register("c", lambda: dict(counter))
        tracer = Tracer(registry)

        def produce():
            for _ in range(4):
                counter["n"] += 1
                yield counter["n"]

        results = list(tracer.traced_iter("Scan", produce()))
        assert results == [1, 2, 3, 4]
        (span,) = tracer.roots
        assert span.rows == 4
        assert span.metrics == {"c.n": 4}
        assert span.complete

    def test_abandoned_iterator_is_marked_incomplete(self):
        tracer = Tracer(MetricsRegistry())
        wrapped = tracer.traced_iter("Scan", iter(range(100)))
        next(wrapped)
        next(wrapped)
        wrapped.close()
        (span,) = tracer.roots
        assert span.rows == 2
        assert not span.complete

    def test_span_json_round_trip(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.span("outer", kind="test"):
            list(tracer.traced_iter("Scan", iter([1, 2])))
        (root,) = tracer.roots
        encoded = json.dumps(root.to_dict())
        restored = Span.from_dict(json.loads(encoded))
        assert restored.to_dict() == root.to_dict()
        assert restored.find("Scan").rows == 2


class TestNullTracer:
    def test_singleton_allocates_no_spans(self):
        spans = {NULL_TRACER.span("a"), NULL_TRACER.span("b", attr=1)}
        assert len(spans) == 1  # the one shared null span
        assert NULL_TRACER.roots == ()
        assert not NULL_TRACER.enabled

    def test_traced_iter_returns_iterable_untouched(self):
        iterable = iter([1, 2, 3])
        assert NULL_TRACER.traced_iter("Scan", iterable) is iterable

    def test_null_span_is_a_context_manager(self):
        with NULL_TRACER.span("a") as span:
            assert span is NULL_TRACER.span("b")

    def test_engine_defaults_to_null_tracer(self, db):
        assert db.engine.tracer is NULL_TRACER
        assert isinstance(db.engine.tracer, NullTracer)


# -- EXPLAIN ANALYZE ----------------------------------------------------------


class TestExplainAnalyze:
    def test_span_tree_matches_plan_tree(self, db):
        report = db.trace(NAPOLI_QUERY)
        root = report.root
        assert root.name == "Query"
        child_names = [c.name for c in root.children]
        assert child_names == [
            "Rewrite", "Plan", "TPatternScanAll", "Filter", "Project",
        ]
        scan = root.find("TPatternScanAll")
        assert {c.name for c in scan.children} == {
            "FTILookup", "StructuralJoin",
        }
        # one binding per version of the napoli element
        assert scan.rows == 3
        assert root.find("Filter").rows == 3

    def test_results_match_untraced_execution(self, db):
        plain = db.query(NAPOLI_QUERY)
        traced = db.trace(NAPOLI_QUERY)
        assert len(traced.result.rows) == len(plain.rows)
        assert traced.result.columns == plain.columns
        assert str(traced.result) == str(plain)

    def test_totals_equal_costmeter_measurement(self, db):
        """The acceptance criterion: the trace and the bench harness see
        the same logical I/O because both read the same registry."""
        meter = CostMeter(
            store=db.store,
            indexes=[db.fti],
            join_stats=db.engine.join_stats,
        )
        with meter.measure() as region:
            report = db.trace(NAPOLI_QUERY)
        measured = region.result
        totals = report.totals()
        assert totals.get("store.delta_reads", 0) == measured.delta_reads
        assert totals.get("store.snapshot_reads", 0) == measured.snapshot_reads
        assert totals.get("store.current_reads", 0) == measured.current_reads
        assert (
            totals.get("fti.postings_scanned", 0) == measured.postings_scanned
        )
        assert totals.get("fti.lookups", 0) == measured.lookups
        assert (
            totals.get("join.candidates_probed", 0)
            == measured.join_candidates_probed
        )
        assert totals.get("join.matches_emitted", 0) == measured.join_matches
        assert measured.delta_reads > 0  # the comparison is not vacuous

    def test_tracer_detached_after_trace(self, db):
        db.trace(NAPOLI_QUERY)
        assert db.engine.tracer is NULL_TRACER

    def test_render_mentions_operators_and_totals(self, db):
        text = db.trace(NAPOLI_QUERY).render()
        for needle in ("Query", "TPatternScanAll", "Filter", "Project",
                       "rows:", "total:"):
            assert needle in text

    def test_json_export_round_trips(self, db):
        report = db.trace(NAPOLI_QUERY)
        payload = json.loads(report.to_json_string())
        assert payload["query"]
        assert payload["row_count"] == len(report.result.rows)
        restored = ExplainAnalyzeReport.trace_from_json(payload)
        assert restored.to_dict() == report.root.to_dict()

    def test_explain_prefix_dispatch(self, db):
        plan = db.query("EXPLAIN " + NAPOLI_QUERY)
        assert isinstance(plan, PlanReport)
        assert "TPatternScanAll" in str(plan)
        analyzed = db.query("EXPLAIN ANALYZE " + NAPOLI_QUERY)
        assert isinstance(analyzed, ExplainAnalyzeReport)
        assert analyzed.result.rows

    def test_navigation_query_traces_dochistory(self, db):
        report = db.trace(
            'SELECT R FROM doc("guide.com")[EVERY] R'
        )
        nav = report.root.find("NavScan")
        assert nav is not None
        assert nav.find("DocHistory") is not None


# -- overhead -----------------------------------------------------------------


class TestOverheadHelper:
    def test_relative_overhead_measures_extra_work(self):
        def fast():
            pass

        def slow():
            sum(range(3000))

        assert relative_overhead(fast, slow, repeats=3, inner=5) > 0.0
        assert relative_overhead(fast, fast, repeats=3, inner=5) < 0.5
