"""Tests for DocHistory, ElementHistory, Reconstruct, navigation, and
CreTime/DelTime."""

import pytest

from repro.clock import BEFORE_TIME, UNTIL_CHANGED
from repro.errors import NoSuchVersionError, QueryPlanError
from repro.index import LifetimeIndex
from repro.model.identifiers import TEID
from repro.operators import (
    CreTime,
    DelTime,
    DocHistory,
    ElementHistory,
    Reconstruct,
)
from repro.operators.navigation import (
    current_teid,
    current_ts,
    next_teid,
    next_ts,
    previous_teid,
    previous_ts,
)
from repro.storage import TemporalDocumentStore
from repro.workload import load_figure1
from repro.xmlcore import Path

from tests.conftest import JAN_01, JAN_15, JAN_26, JAN_31


@pytest.fixture
def setup():
    store = TemporalDocumentStore()
    lifetime = store.subscribe(LifetimeIndex())
    load_figure1(store)
    return store, lifetime


def _akropolis_teid(store, at=JAN_15):
    v2 = store.version("guide.com", 2)
    akropolis = Path("restaurant").select(v2)[1]
    return TEID(store.doc_id("guide.com"), akropolis.xid, at)


def _napoli_teid(store, at=JAN_01):
    v1 = store.version("guide.com", 1)
    napoli = Path("restaurant").first(v1)
    return TEID(store.doc_id("guide.com"), napoli.xid, at)


class TestDocHistory:
    def test_whole_history_backwards(self, setup):
        store, _ = setup
        history = DocHistory(
            store, "guide.com", BEFORE_TIME + 1, UNTIL_CHANGED - 1
        )
        results = history.run()
        assert [t.timestamp for t, _tree in results] == [
            JAN_31,
            JAN_15,
            JAN_01,
        ]
        assert [
            len(Path("restaurant").select(tree)) for _t, tree in results
        ] == [1, 2, 1]

    def test_interval_clips(self, setup):
        store, _ = setup
        history = DocHistory(store, "guide.com", JAN_15, JAN_31)
        assert [t.timestamp for t in history.teids()] == [JAN_15]

    def test_interval_overlap_includes_running_version(self, setup):
        store, _ = setup
        # Version 1 is still valid at Jan 10 even though committed Jan 1.
        history = DocHistory(store, "guide.com", JAN_01 + 5, JAN_15)
        assert [t.timestamp for t in history.teids()] == [JAN_01]

    def test_empty_range(self, setup):
        store, _ = setup
        assert DocHistory(store, "guide.com", 0, 10).run() == []

    def test_yields_teids_of_roots(self, setup):
        store, _ = setup
        teid, tree = next(iter(DocHistory(store, "guide.com", JAN_01, JAN_15)))
        assert teid.xid == tree.xid == 1

    def test_trees_are_independent_copies(self, setup):
        store, _ = setup
        results = DocHistory(
            store, "guide.com", BEFORE_TIME + 1, UNTIL_CHANGED - 1
        ).run()
        newest = results[0][1]
        newest.find("restaurant").find("price").text = "XXX"
        again = store.version("guide.com", 3)
        assert again.find("restaurant").find("price").text == "18"

    def test_delta_read_cost_is_incremental(self, setup):
        store, _ = setup
        store.repository.delta_reads = 0
        DocHistory(store, "guide.com", BEFORE_TIME + 1, UNTIL_CHANGED - 1).run()
        # One reconstruction of the newest (0 deltas: it is current) plus
        # one delta per older version.
        assert store.repository.delta_reads == 2


class TestElementHistory:
    def test_skips_versions_without_element(self, setup):
        store, _ = setup
        eid = _akropolis_teid(store).eid
        history = ElementHistory(
            store, eid, BEFORE_TIME + 1, UNTIL_CHANGED - 1
        )
        results = history.run()
        assert [t.timestamp for t, _s in results] == [JAN_15]
        assert results[0][1].find("name").text == "Akropolis"

    def test_element_alive_in_all_versions(self, setup):
        store, _ = setup
        eid = _napoli_teid(store).eid
        results = ElementHistory(
            store, eid, BEFORE_TIME + 1, UNTIL_CHANGED - 1
        ).run()
        prices = [subtree.find("price").text for _t, subtree in results]
        assert prices == ["18", "15", "15"]
        assert all(t.eid == eid for t, _s in results)


class TestReconstruct:
    def test_reconstructs_subtree(self, setup):
        store, _ = setup
        subtree = Reconstruct(store, _akropolis_teid(store)).run()
        assert subtree.find("price").text == "13"

    def test_whole_document_via_root_teid(self, setup):
        store, _ = setup
        teid = TEID(store.doc_id("guide.com"), 1, JAN_26)
        tree = Reconstruct(store, teid).run()
        assert len(Path("restaurant").select(tree)) == 2

    def test_missing_version_raises(self, setup):
        store, _ = setup
        teid = TEID(store.doc_id("guide.com"), 1, JAN_01 - 99)
        with pytest.raises(NoSuchVersionError):
            Reconstruct(store, teid).run()
        assert Reconstruct(store, teid).run_or_none() is None

    def test_element_absent_raises(self, setup):
        store, _ = setup
        gone = _akropolis_teid(store, at=JAN_31)
        with pytest.raises(NoSuchVersionError):
            Reconstruct(store, gone).run()


class TestNavigation:
    def test_previous_next_current(self, setup):
        store, _ = setup
        teid = _napoli_teid(store, at=JAN_15)
        assert previous_ts(store, teid) == JAN_01
        assert next_ts(store, teid) == JAN_31
        assert current_ts(store, teid.eid) == JAN_31
        assert previous_teid(store, teid).timestamp == JAN_01
        assert next_teid(store, teid).eid == teid.eid

    def test_boundaries(self, setup):
        store, _ = setup
        first = _napoli_teid(store, at=JAN_01)
        last = _napoli_teid(store, at=JAN_31)
        assert previous_ts(store, first) is None
        assert next_ts(store, last) is None
        assert previous_teid(store, first) is None

    def test_current_of_deleted_document(self, setup):
        store, _ = setup
        eid = _napoli_teid(store).eid
        store.delete("guide.com")
        assert current_ts(store, eid) is None
        assert current_teid(store, eid) is None

    def test_no_data_read(self, setup):
        store, _ = setup
        teid = _napoli_teid(store, at=JAN_15)
        store.repository.delta_reads = 0
        before = store.disk.snapshot()
        previous_ts(store, teid)
        next_ts(store, teid)
        current_ts(store, teid.eid)
        cost = store.disk.snapshot() - before
        assert cost.reads == 0
        assert store.repository.delta_reads == 0


class TestCreTimeDelTime:
    def test_cretime_both_strategies_agree(self, setup):
        store, lifetime = setup
        for teid in (_napoli_teid(store, JAN_26), _akropolis_teid(store)):
            traverse = CreTime(store, teid, "traverse").value()
            indexed = CreTime(store, teid, "index", lifetime).value()
            assert traverse == indexed

    def test_cretime_values(self, setup):
        store, _ = setup
        assert CreTime(store, _napoli_teid(store, JAN_31), "traverse").value() == JAN_01
        assert CreTime(store, _akropolis_teid(store), "traverse").value() == JAN_15

    def test_deltime_values(self, setup):
        store, lifetime = setup
        akropolis = _akropolis_teid(store)
        assert DelTime(store, akropolis, "traverse").value() == JAN_31
        assert DelTime(store, akropolis, "index", lifetime).value() == JAN_31
        napoli = _napoli_teid(store)
        assert DelTime(store, napoli, "traverse").value() is None
        assert DelTime(store, napoli, "index", lifetime).value() is None

    def test_deltime_document_deletion(self, setup):
        store, lifetime = setup
        napoli = _napoli_teid(store)
        delete_ts = JAN_31 + 1000
        store.delete("guide.com", ts=delete_ts)
        assert DelTime(store, napoli, "traverse").value() == delete_ts
        assert DelTime(store, napoli, "index", lifetime).value() == delete_ts

    def test_traversal_reads_no_trees(self, setup):
        store, _ = setup
        teid = _akropolis_teid(store)
        store.repository.current_reads = 0
        CreTime(store, teid, "traverse").value()
        assert store.repository.current_reads == 0  # "no reconstruction"

    def test_index_strategy_requires_index(self, setup):
        store, _ = setup
        with pytest.raises(QueryPlanError):
            CreTime(store, _napoli_teid(store), "index")
        with pytest.raises(QueryPlanError):
            DelTime(store, _napoli_teid(store), "bogus")

    def test_unknown_teid(self, setup):
        store, lifetime = setup
        bad = TEID(store.doc_id("guide.com"), 1, JAN_01 - 99)
        with pytest.raises(NoSuchVersionError):
            CreTime(store, bad, "traverse").value()
        with pytest.raises(NoSuchVersionError):
            CreTime(
                store,
                TEID(99, 99, JAN_01),
                "index",
                lifetime,
            ).value()


class TestNavigationDanglingRegression:
    """PREVIOUS/NEXT/CURRENT must verify the XID exists in the target
    version.  Akropolis lives only in version 2 (created by delta 1,
    deleted by delta 2): every navigation away from it dangles, and an
    earlier revision happily returned TEIDs addressing versions the
    element was never part of.
    """

    def test_next_of_element_deleted_mid_history(self, setup):
        store, _ = setup
        assert next_teid(store, _akropolis_teid(store)) is None

    def test_previous_of_element_created_mid_history(self, setup):
        store, _ = setup
        assert previous_teid(store, _akropolis_teid(store)) is None

    def test_current_of_deleted_element(self, setup):
        store, _ = setup
        assert current_teid(store, _akropolis_teid(store).eid) is None

    def test_surviving_element_still_navigates(self, setup):
        store, _ = setup
        teid = _napoli_teid(store, at=JAN_15)
        assert previous_teid(store, teid).timestamp == JAN_01
        assert next_teid(store, teid).timestamp == JAN_31
        assert current_teid(store, teid.eid).timestamp == JAN_31

    def test_existence_check_is_one_delta_scan(self, setup):
        store, _ = setup
        teid = _napoli_teid(store, at=JAN_15)
        store.repository.delta_reads = 0
        store.repository.current_reads = 0
        store.repository.snapshot_reads = 0
        previous_teid(store, teid)
        next_teid(store, teid)
        assert store.repository.delta_reads == 2  # one boundary delta each
        assert store.repository.current_reads == 0  # no reconstruction
        assert store.repository.snapshot_reads == 0


class TestLifetimePhantomRegression:
    """CreTime/DelTime traversal must not invent lifetimes for XIDs that
    never existed in the addressed version.  An earlier revision of
    CreTime fell through to "the document's first version" for any XID
    with no creating delta below the addressed version — including XIDs
    that never existed at all.
    """

    def test_cretime_bogus_xid_raises(self, setup):
        store, _ = setup
        bogus = TEID(store.doc_id("guide.com"), 999_999, JAN_15)
        with pytest.raises(NoSuchVersionError):
            CreTime(store, bogus, "traverse").value()

    def test_deltime_bogus_xid_raises(self, setup):
        store, _ = setup
        bogus = TEID(store.doc_id("guide.com"), 999_999, JAN_15)
        with pytest.raises(NoSuchVersionError):
            DelTime(store, bogus, "traverse").value()

    def test_cretime_addressed_before_creation_raises(self, setup):
        store, _ = setup
        early = _akropolis_teid(store, at=JAN_01)  # created 15/01
        with pytest.raises(NoSuchVersionError):
            CreTime(store, early, "traverse").value()

    def test_deltime_addressed_before_creation_raises(self, setup):
        store, _ = setup
        early = _akropolis_teid(store, at=JAN_01)
        with pytest.raises(NoSuchVersionError):
            DelTime(store, early, "traverse").value()

    def test_cretime_addressed_after_deletion_raises(self, setup):
        store, _ = setup
        gone = _akropolis_teid(store, at=JAN_31)  # deleted in v3
        with pytest.raises(NoSuchVersionError):
            CreTime(store, gone, "traverse").value()

    def test_strategies_agree_on_phantoms(self, setup):
        store, lifetime = setup
        bogus = TEID(store.doc_id("guide.com"), 999_999, JAN_15)
        with pytest.raises(NoSuchVersionError):
            CreTime(store, bogus, "index", lifetime).value()
        with pytest.raises(NoSuchVersionError):
            CreTime(store, bogus, "traverse").value()

    def test_verification_uses_no_reconstruction(self, setup):
        store, _ = setup
        bogus = TEID(store.doc_id("guide.com"), 999_999, JAN_15)
        store.repository.current_reads = 0
        store.repository.snapshot_reads = 0
        with pytest.raises(NoSuchVersionError):
            CreTime(store, bogus, "traverse").value()
        assert store.repository.current_reads == 0
        assert store.repository.snapshot_reads == 0
