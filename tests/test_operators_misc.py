"""Tests for Diff operator, relational operators, and equality semantics."""

import pytest

from repro.clock import Interval
from repro.diff import apply_script
from repro.diff.editscript import EditScript
from repro.equality import (
    deep_equal,
    identity_equal,
    shallow_equal,
    similar,
    similarity,
    value_equal,
)
from repro.model.identifiers import EID, TEID
from repro.operators import (
    Aggregate,
    CrossJoin,
    Diff,
    Distinct,
    OrderBy,
    Project,
    Select,
    TemporalJoin,
    ThetaJoin,
)
from repro.operators.relational import INTERVAL_KEY
from repro.storage import TemporalDocumentStore
from repro.workload import load_figure1
from repro.xmlcore import element, parse

from tests.conftest import JAN_01, JAN_31


class TestDiffOperator:
    def test_diff_two_trees(self):
        first = parse("<r><p>15</p></r>")
        second = parse("<r><p>18</p></r>")
        delta = Diff().run(first, second)
        assert delta.tag == "delta"
        assert delta.find("update") is not None

    def test_diff_teids(self):
        store = TemporalDocumentStore()
        load_figure1(store)
        doc = store.doc_id("guide.com")
        script = Diff(store).script(TEID(doc, 1, JAN_01), TEID(doc, 1, JAN_31))
        old = store.version("guide.com", 1)
        patched = apply_script(old, script)
        assert patched.equals_deep(store.version("guide.com", 3))

    def test_diff_script_applies(self):
        from repro.model.identifiers import XIDAllocator
        from repro.model.versioned import stamp_new_nodes

        first = parse("<r><n>A</n></r>")
        stamp_new_nodes(first, XIDAllocator(), 0)
        second = parse("<r><n>A</n><p>9</p></r>")
        script = Diff().script(first, second)
        assert apply_script(first.copy(), script).equals_deep(second)

    def test_diff_needs_store_for_teids(self):
        with pytest.raises(ValueError):
            Diff().run(TEID(1, 1, 0), TEID(1, 1, 1))

    def test_diff_rejects_garbage(self):
        with pytest.raises(TypeError):
            Diff().run("nope", parse("<a/>"))

    def test_closure_delta_is_xml(self):
        from repro.xmlcore import serialize

        delta = Diff().run(parse("<a><b>1</b></a>"), parse("<a><b>2</b></a>"))
        reparsed = parse(serialize(delta))
        script = EditScript.from_xml(reparsed)
        assert len(script) >= 1


class TestRelationalOperators:
    ROWS = [
        {"name": "Napoli", "price": 15},
        {"name": "Akropolis", "price": 13},
        {"name": "Roma", "price": 22},
    ]

    def test_select(self):
        out = list(Select(self.ROWS, lambda r: r["price"] < 20))
        assert [r["name"] for r in out] == ["Napoli", "Akropolis"]

    def test_project(self):
        out = list(Project(self.ROWS, {"n": lambda r: r["name"]}))
        assert out[0] == {"n": "Napoli"}

    def test_cross_join(self):
        left = [{"a": 1}, {"a": 2}]
        right = [{"b": 10}, {"b": 20}]
        out = list(CrossJoin(left, right))
        assert len(out) == 4
        assert {"a": 1, "b": 10} in out

    def test_theta_join(self):
        left = [{"a": 1}, {"a": 2}]
        right = [{"b": 1}, {"b": 3}]
        out = list(ThetaJoin(left, right, lambda r: r["a"] == r["b"]))
        assert out == [{"a": 1, "b": 1}]

    def test_temporal_join_overlap(self):
        left = [{"x": 1, INTERVAL_KEY: Interval(0, 10)}]
        right = [
            {"y": 1, INTERVAL_KEY: Interval(5, 15)},
            {"y": 2, INTERVAL_KEY: Interval(10, 20)},
        ]
        out = list(TemporalJoin(left, right))
        assert len(out) == 1
        assert out[0][INTERVAL_KEY] == Interval(5, 10)

    def test_temporal_join_without_intervals_degrades(self):
        out = list(TemporalJoin([{"x": 1}], [{"y": 2}]))
        assert out == [{"x": 1, "y": 2}]

    def test_distinct(self):
        rows = [{"a": 1}, {"a": 1}, {"a": 2}]
        assert len(list(Distinct(rows))) == 2

    def test_order_by(self):
        out = list(OrderBy(self.ROWS, key=lambda r: r["price"]))
        assert [r["price"] for r in out] == [13, 15, 22]

    def test_aggregate(self):
        out = list(
            Aggregate(
                self.ROWS,
                {
                    "total": ("sum", lambda r: r["price"]),
                    "n": ("count", None),
                    "cheapest": ("min", lambda r: r["price"]),
                    "avg": ("avg", lambda r: r["price"]),
                },
            )
        )
        assert out == [
            {"total": 50, "n": 3, "cheapest": 13, "avg": 50 / 3}
        ]

    def test_aggregate_empty_input(self):
        out = list(Aggregate([], {"s": ("sum", lambda r: r["x"])}))
        assert out == [{"s": None}]

    def test_aggregate_unknown_kind(self):
        with pytest.raises(ValueError):
            Aggregate([], {"bad": ("median", None)})


class TestValueEquality:
    def test_numeric_coercion(self):
        assert value_equal("15", 15)
        assert value_equal(parse("<p>15</p>"), 15.0)
        assert not value_equal("15x", 15)

    def test_deep_vs_shallow(self):
        left = parse('<r k="1"><n>A</n><extra>z</extra></r>')
        right = parse('<r k="1"><n>A</n></r>')
        left.text = right.text = ""
        assert not deep_equal(left, right)
        assert shallow_equal(left, right)

    def test_string_comparison_strips(self):
        assert value_equal("  Napoli ", "Napoli")


class TestIdentityEquality:
    def test_eids_and_teids(self):
        assert identity_equal(EID(1, 2), TEID(1, 2, 99))
        assert not identity_equal(EID(1, 2), EID(1, 3))

    def test_trees_need_doc_ids(self):
        tree = element("a")
        tree.xid = 5
        assert identity_equal(tree, tree, doc_left=1, doc_right=1)
        with pytest.raises(ValueError):
            identity_equal(tree, tree)

    def test_unstamped_tree_rejected(self):
        with pytest.raises(ValueError):
            identity_equal(element("a"), element("b"), 1, 1)


class TestSimilarity:
    def test_identical_scores_one(self):
        tree = parse("<r><n>Napoli</n><p>15</p></r>")
        assert similarity(tree, tree.copy()) == pytest.approx(1.0)

    def test_small_change_stays_similar(self):
        left = parse("<r><n>Napoli</n><p>15</p><street>gata 1</street></r>")
        right = parse("<r><n>Napoli</n><p>18</p><street>gata 1</street></r>")
        assert similar(left, right, threshold=0.7)

    def test_different_restaurants_same_name_dissimilar(self):
        left = parse(
            "<r><n>Napoli</n><p>15</p><street>gata 1</street></r>"
        )
        right = parse(
            "<r><n>Napoli</n><p>40</p><street>elm road 99</street></r>"
        )
        assert similarity(left, right) < 0.8

    def test_reintroduced_entry_scores_full(self):
        # Re-created entry: identical content, new EID — ~ still matches.
        left = parse("<r><n>Napoli</n><p>15</p></r>")
        right = parse("<r><n>Napoli</n><p>15</p></r>")
        left.xid, right.xid = 1, 99
        assert similar(left, right)

    def test_tag_mismatch_penalized(self):
        assert similarity(parse("<a>x</a>"), parse("<b>x</b>")) < 1.0

    def test_scalar_inputs(self):
        assert similarity("napoli pizza", "napoli pizza") == 1.0
        assert similarity("napoli", "roma") == 0.0
