"""Tests for PatternScan, TPatternScan, TPatternScanAll."""

import pytest

from repro.index import TemporalFullTextIndex
from repro.operators import PatternScan, Reconstruct, TPatternScan, TPatternScanAll
from repro.pattern import Pattern
from repro.storage import TemporalDocumentStore
from repro.workload import load_figure1

from tests.conftest import JAN_01, JAN_15, JAN_26, JAN_31


@pytest.fixture
def setup():
    store = TemporalDocumentStore()
    fti = store.subscribe(TemporalFullTextIndex())
    load_figure1(store)
    return store, fti


def _names(store, teids):
    out = []
    for teid in teids:
        subtree = Reconstruct(store, teid).run()
        out.append(subtree.find("name").text)
    return sorted(out)


class TestPatternScan:
    def test_current_snapshot_only(self, setup):
        store, fti = setup
        scan = PatternScan(fti, Pattern.from_path("restaurant"))
        teids = list(scan.teids())
        assert _names(store, teids) == ["Napoli"]

    def test_value_pattern(self, setup):
        store, fti = setup
        pattern = Pattern.from_path(
            "restaurant/name", value="Napoli", project_last=False
        )
        assert len(list(PatternScan(fti, pattern).teids())) == 1
        gone = Pattern.from_path(
            "restaurant/name", value="Akropolis", project_last=False
        )
        assert list(PatternScan(fti, gone).teids()) == []

    def test_doc_restriction(self, setup):
        store, fti = setup
        store.put("other.com", "<guide><restaurant><name>Solo</name></restaurant></guide>")
        pattern = Pattern.from_path("restaurant")
        unrestricted = list(PatternScan(fti, pattern).teids())
        assert len(unrestricted) == 2
        restricted = PatternScan(
            fti, pattern, docs={store.doc_id("other.com")}
        ).teids()
        assert len(list(restricted)) == 1


class TestTPatternScan:
    def test_snapshot_at_jan26(self, setup):
        store, fti = setup
        scan = TPatternScan(
            fti, Pattern.from_path("restaurant"), JAN_26, store=store
        )
        assert _names(store, scan.teids()) == ["Akropolis", "Napoli"]

    def test_snapshot_at_jan01(self, setup):
        store, fti = setup
        scan = TPatternScan(
            fti, Pattern.from_path("restaurant"), JAN_01, store=store
        )
        assert _names(store, scan.teids()) == ["Napoli"]

    def test_before_creation_empty(self, setup):
        store, fti = setup
        scan = TPatternScan(
            fti, Pattern.from_path("restaurant"), JAN_01 - 10, store=store
        )
        assert list(scan.teids()) == []

    def test_teids_normalized_to_version_commit(self, setup):
        store, fti = setup
        scan = TPatternScan(
            fti, Pattern.from_path("restaurant"), JAN_26, store=store
        )
        assert {t.timestamp for t in scan.teids()} == {JAN_15}

    def test_without_store_uses_query_time(self, setup):
        _store, fti = setup
        scan = TPatternScan(fti, Pattern.from_path("restaurant"), JAN_26)
        assert {t.timestamp for t in scan.teids()} == {JAN_26}


class TestTPatternScanAll:
    def test_whole_history(self, setup):
        store, fti = setup
        scan = TPatternScanAll(
            fti, Pattern.from_path("restaurant"), store=store
        )
        matches = list(scan.run())
        # Napoli has one maximal interval; Akropolis another.
        assert len(matches) == 2

    def test_match_intervals(self, setup):
        store, fti = setup
        pattern = Pattern.from_path(
            "restaurant/name", value="Akropolis", project_last=False
        )
        match = next(iter(TPatternScanAll(fti, pattern, store=store).run()))
        assert match.interval.start == JAN_15
        assert match.interval.end == JAN_31

    def test_per_version_expansion(self, setup):
        store, fti = setup
        pattern = Pattern.from_path(
            "restaurant/name", value="Napoli", project_last=False
        )
        scan = TPatternScanAll(fti, pattern, store=store)
        teids = list(scan.teids_per_version())
        assert [t.timestamp for t in teids] == [JAN_01, JAN_15, JAN_31]
        # All versions of the same element share the EID.
        assert len({t.eid for t in teids}) == 1

    def test_history_teids_normalized_like_snapshot(self, setup):
        # Regression: the history scan must push TEIDs through the same
        # store normalization as the snapshot scan, so both variants hand
        # out identical canonical TEIDs.
        store, fti = setup
        pattern = Pattern.from_path("restaurant")
        history = list(TPatternScanAll(fti, pattern, store=store).teids())
        assert history  # sanity
        for teid in history:
            assert store.normalize_teid(teid) == teid
        # Same elements as the snapshot scan sees — the history variant
        # anchors each at its first matching version instead of JAN_26's.
        snapshot = list(
            TPatternScan(fti, pattern, JAN_26, store=store).teids()
        )
        assert {t.eid for t in snapshot} == {t.eid for t in history}
        assert [t.timestamp for t in history] == [JAN_01, JAN_15]

    def test_per_version_requires_store(self, setup):
        _store, fti = setup
        scan = TPatternScanAll(fti, Pattern.from_path("restaurant"))
        with pytest.raises(ValueError):
            scan.teids_per_version()

    def test_value_that_never_existed(self, setup):
        store, fti = setup
        pattern = Pattern.from_path(
            "restaurant/name", value="Atlantis", project_last=False
        )
        assert list(TPatternScanAll(fti, pattern, store=store).run()) == []

    def test_temporal_join_rejects_disjoint_combination(self, setup):
        store, fti = setup
        # "akropolis" (Jan 15-31) never coexists with price "18" (Jan 31-).
        pattern = Pattern.from_path(
            "restaurant", value="18", project_last=False
        )
        # restrict further: restaurant containing both akropolis and 18
        from repro.pattern import PatternNode

        root = pattern.nodes()[0]
        root.add(PatternNode("akropolis", kind="word", relationship="contains"))
        rebuilt = Pattern(root)
        assert list(TPatternScanAll(fti, rebuilt, store=store).run()) == []
