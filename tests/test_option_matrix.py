"""Every engine configuration must return the same answers.

The execution knobs (pattern index on/off, rewriter on/off, lifetime
strategy) only change *costs*; this matrix pins that invariant across the
paper's query shapes on the Figure 1 data and on a synthetic collection.
"""

import itertools

import pytest

from repro.index import LifetimeIndex, TemporalFullTextIndex
from repro.query import QueryEngine, QueryOptions
from repro.storage import TemporalDocumentStore
from repro.workload import TDocGenerator, build_collection, load_figure1

FIGURE1_QUERIES = (
    'SELECT R FROM doc("guide.com")[26/01/2001]/restaurant R',
    'SELECT SUM(R) FROM doc("guide.com")[26/01/2001]/restaurant R',
    'SELECT TIME(R), R/price FROM doc("guide.com")[EVERY]/restaurant R '
    'WHERE R/name="Napoli"',
    'SELECT DISTINCT R/name FROM doc("guide.com")[EVERY]/restaurant R '
    "WHERE CREATE TIME(R) >= 11/01/2001",
    'SELECT R/name FROM doc("guide.com")[EVERY]/restaurant R '
    "WHERE TIME(R) >= 15/01/2001 AND R/price > 12",
    'SELECT CURRENT(R)/price FROM doc("guide.com")[01/01/2001]/restaurant R',
)

_COMBOS = list(itertools.product(
    (True, False),            # use_pattern_index
    (True, False),            # use_rewriter
    ("index", "traverse"),    # lifetime_strategy
))


def _engines(store, fti, lifetime):
    for use_index, use_rewriter, strategy in _COMBOS:
        options = QueryOptions(
            use_pattern_index=use_index,
            lifetime_strategy=strategy,
            use_rewriter=use_rewriter,
        )
        yield QueryEngine(
            store, fti=fti, lifetime=lifetime, options=options
        ), (use_index, use_rewriter, strategy)


@pytest.fixture(scope="module")
def figure1():
    store = TemporalDocumentStore()
    fti = store.subscribe(TemporalFullTextIndex())
    lifetime = store.subscribe(LifetimeIndex())
    load_figure1(store)
    return store, fti, lifetime


@pytest.fixture(scope="module")
def synthetic():
    store = TemporalDocumentStore()
    fti = store.subscribe(TemporalFullTextIndex())
    lifetime = store.subscribe(LifetimeIndex())
    build_collection(
        store, n_docs=3, versions_per_doc=6,
        generator=TDocGenerator(seed=55),
    )
    return store, fti, lifetime


class TestFigure1Matrix:
    @pytest.mark.parametrize("query", FIGURE1_QUERIES)
    def test_all_configurations_agree(self, figure1, query):
        store, fti, lifetime = figure1
        results = {}
        for engine, combo in _engines(store, fti, lifetime):
            rows = tuple(sorted(str(engine.execute(query)).splitlines()))
            results[combo] = rows
        distinct = set(results.values())
        assert len(distinct) == 1, {
            combo: rows for combo, rows in results.items()
        }


class TestSyntheticMatrix:
    QUERIES = (
        'SELECT COUNT(I) FROM doc("*")//item I',
        'SELECT TIME(D) FROM doc("doc2.xml")[EVERY] D '
        "WHERE TIME(D) > 03/01/2001",
        'SELECT I FROM doc("doc1.xml")[EVERY]//item I',
    )

    @pytest.mark.parametrize("query", QUERIES)
    def test_all_configurations_agree(self, synthetic, query):
        store, fti, lifetime = synthetic
        results = set()
        for engine, _combo in _engines(store, fti, lifetime):
            results.add(
                tuple(sorted(str(engine.execute(query)).splitlines()))
            )
        assert len(results) == 1
