"""The paper's own worked examples, end to end (Figure 1 + Q1/Q2/Q3 +
Section 6.1's operator snippets), as executable assertions.

This is the closest thing the paper has to an evaluation section; the
benchmark `bench_figure1_queries.py` regenerates the same rows with cost
columns attached.
"""

from repro.clock import format_timestamp
from repro.xmlcore import Path

from tests.conftest import JAN_01, JAN_15, JAN_31


class TestFigure1Timeline:
    """Figure 1: the restaurant list as retrieved on 01/01, 15/01, 31/01."""

    def test_january_1st(self, figure1_db):
        tree = figure1_db.snapshot("guide.com", JAN_01)
        restaurants = Path("restaurant").select(tree)
        assert [(r.find("name").text, r.find("price").text) for r in restaurants] == [
            ("Napoli", "15")
        ]

    def test_january_15th(self, figure1_db):
        tree = figure1_db.snapshot("guide.com", JAN_15)
        restaurants = Path("restaurant").select(tree)
        assert [(r.find("name").text, r.find("price").text) for r in restaurants] == [
            ("Napoli", "15"),
            ("Akropolis", "13"),
        ]

    def test_january_31st(self, figure1_db):
        tree = figure1_db.snapshot("guide.com", JAN_31)
        restaurants = Path("restaurant").select(tree)
        assert [(r.find("name").text, r.find("price").text) for r in restaurants] == [
            ("Napoli", "18")
        ]


class TestSection6Queries:
    def test_q1_list_restaurants_as_of_jan26(self, figure1_db):
        """Q1: TPatternScan followed by Reconstruct."""
        result = figure1_db.query(
            'SELECT R FROM doc("guide.com")[26/01/2001]/restaurant R'
        )
        names = sorted(
            row["R"].tree.find("name").text for row in result
        )
        assert names == ["Akropolis", "Napoli"]

    def test_q2_count_without_reconstruction(self, figure1_db):
        """Q2: TPatternScan + Sum; "reconstruction ... is not needed"."""
        repo = figure1_db.store.repository
        repo.delta_reads = 0
        result = figure1_db.query(
            'SELECT SUM(R) FROM doc("guide.com")[26/01/2001]/restaurant R'
        )
        assert result.scalar() == 2
        assert repo.delta_reads == 0

    def test_q3_price_history(self, figure1_db):
        """Q3: TPatternScanAll; predicate acts on all versions."""
        result = figure1_db.query(
            'SELECT TIME(R), R/price '
            'FROM doc("guide.com")[EVERY]/restaurant R '
            'WHERE R/name="Napoli"'
        )
        rows = [
            (
                format_timestamp(int(row["TIME(R)"])),
                row["R/price"][0].node.text_content(),
            )
            for row in result
        ]
        assert rows == [
            ("01/01/2001", "15"),
            ("15/01/2001", "15"),
            ("31/01/2001", "18"),
        ]

    def test_price_increase_query_section74(self, figure1_db):
        """The Section 7.4 example: restaurants that increased their price
        since 10/01/2001 — compared by name (the ambiguous variant) and by
        identity (the EID variant)."""
        by_name = figure1_db.query(
            'SELECT R1/name FROM doc("guide.com")[10/01/2001]/restaurant R1, '
            'doc("guide.com")/restaurant R2 '
            "WHERE R1/name = R2/name AND R1/price < R2/price"
        )
        by_identity = figure1_db.query(
            'SELECT R1/name FROM doc("guide.com")[10/01/2001]/restaurant R1, '
            'doc("guide.com")/restaurant R2 '
            "WHERE R1 == R2 AND R1/price < R2/price"
        )
        for result in (by_name, by_identity):
            assert [
                v.node.text_content() for row in result for v in row["R1/name"]
            ] == ["Napoli"]
