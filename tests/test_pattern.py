"""Tests for pattern trees and the structural join."""

import pytest

from repro.clock import Interval
from repro.errors import QueryPlanError
from repro.index import TemporalFullTextIndex
from repro.index.postings import Posting
from repro.pattern import Pattern, PatternNode, structural_join
from repro.storage import TemporalDocumentStore
from repro.workload import load_figure1

from tests.conftest import JAN_26


class TestPatternTree:
    def test_from_path_chain(self):
        pattern = Pattern.from_path("restaurant/name")
        terms = [n.term for n in pattern.nodes()]
        assert terms == ["restaurant", "name"]
        assert pattern.edges() == [(0, 1, "child")]

    def test_from_path_descendant(self):
        pattern = Pattern.from_path("guide//price")
        assert pattern.edges() == [(0, 1, "descendant")]

    def test_value_words_attach_to_last_step(self):
        pattern = Pattern.from_path("restaurant/name", value="Napoli Pizza")
        terms = [n.term for n in pattern.nodes()]
        assert terms == ["restaurant", "name", "napoli", "pizza"]
        assert (1, 2, "contains") in pattern.edges()
        assert (1, 3, "contains") in pattern.edges()

    def test_projection_default_and_explicit(self):
        last = Pattern.from_path("a/b")
        assert last.projected_index() == 1
        first = Pattern.from_path("a/b", project_last=False)
        assert first.projected_index() == 0

    def test_wildcard_rejected(self):
        with pytest.raises(QueryPlanError):
            Pattern.from_path("a/*")

    def test_multiword_term_rejected(self):
        with pytest.raises(QueryPlanError):
            PatternNode("two words")

    def test_root_projected_when_none_marked(self):
        root = PatternNode("a")
        root.add(PatternNode("b"))
        pattern = Pattern(root)
        assert pattern.projected_index() == 0


def _posting(doc, xid, ancestors, path="", start=0, end=100):
    return Posting(doc, xid, tuple(ancestors), path, start, end)


class TestStructuralJoin:
    def _pattern(self):
        return Pattern.from_path("r/n", project_last=False)

    def test_parent_relationship(self):
        pattern = self._pattern()
        r = _posting(1, 2, (1,))
        n_child = _posting(1, 5, (1, 2))
        n_elsewhere = _posting(1, 7, (1, 3))
        matches = list(structural_join(pattern, [[r], [n_child, n_elsewhere]]))
        assert len(matches) == 1
        assert matches[0].postings[1].xid == 5

    def test_descendant_relationship(self):
        root = PatternNode("r")
        root.add(PatternNode("n", relationship="descendant"))
        pattern = Pattern(root)
        r = _posting(1, 2, (1,))
        deep = _posting(1, 9, (1, 2, 4))
        outside = _posting(1, 10, (1, 3))
        matches = list(structural_join(pattern, [[r], [deep, outside]]))
        assert [m.postings[1].xid for m in matches] == [9]

    def test_containment_relationship(self):
        root = PatternNode("n")
        root.add(PatternNode("napoli", kind="word", relationship="contains"))
        pattern = Pattern(root)
        n = _posting(1, 5, (1, 2))
        word_same = _posting(1, 5, (1, 2))
        word_below = _posting(1, 8, (1, 2, 5))
        word_outside = _posting(1, 9, (1, 2, 6))
        matches = list(structural_join(
            pattern, [[n], [word_same, word_below, word_outside]]
        ))
        assert len(matches) == 2

    def test_document_must_match(self):
        pattern = self._pattern()
        matches = list(structural_join(
            pattern, [[_posting(1, 2, (1,))], [_posting(2, 5, (1, 2))]]
        ))
        assert matches == []

    def test_empty_list_short_circuits(self):
        pattern = self._pattern()
        assert list(structural_join(pattern, [[_posting(1, 2, (1,))], []])) == []

    def test_temporal_intersection_required(self):
        pattern = self._pattern()
        r = _posting(1, 2, (1,), start=0, end=10)
        n = _posting(1, 5, (1, 2), start=10, end=20)
        assert list(structural_join(pattern, [[r], [n]])) == []
        n_overlap = _posting(1, 5, (1, 2), start=5, end=20)
        matches = list(structural_join(pattern, [[r], [n_overlap]]))
        assert matches[0].interval == Interval(5, 10)

    def test_wrong_list_count(self):
        with pytest.raises(ValueError):
            structural_join(self._pattern(), [[]])

    def test_duplicate_bindings_deduped(self):
        root = PatternNode("n")
        root.add(PatternNode("again", kind="word", relationship="contains"))
        pattern = Pattern(root)
        n = _posting(1, 5, (1,))
        # Two ordinal postings of the same word at the same element.
        w0 = _posting(1, 5, (1,))
        w1 = _posting(1, 5, (1,))
        matches = list(structural_join(pattern, [[n], [w0, w1]]))
        assert len(matches) == 1

    def test_teid_of_projected_node(self):
        pattern = Pattern.from_path("r/n", project_last=False)
        r = _posting(3, 2, (1,), start=50, end=100)
        n = _posting(3, 5, (1, 2), start=50, end=100)
        match = next(iter(structural_join(pattern, [[r], [n]])))
        teid = match.teid(pattern)
        assert (teid.doc_id, teid.xid, teid.timestamp) == (3, 2, 50)
        at = match.teid(pattern, at=75)
        assert at.timestamp == 75


class TestAgainstRealIndex:
    def test_figure1_pattern(self):
        store = TemporalDocumentStore()
        fti = store.subscribe(TemporalFullTextIndex())
        load_figure1(store)
        pattern = Pattern.from_path(
            "restaurant/name", value="Napoli", project_last=False
        )
        lists = [fti.lookup_t(n.term, JAN_26) for n in pattern.nodes()]
        matches = list(structural_join(pattern, lists))
        assert len(matches) == 1
        restaurant = matches[0].postings[0]
        assert restaurant.path == "guide/restaurant"
