"""Tests for the store archive: dump, load, replay."""

import pytest

from repro import TemporalXMLDatabase
from repro.clock import parse_date
from repro.errors import StorageError
from repro.storage import TemporalDocumentStore
from repro.storage.persistence import (
    dump_store,
    load_store,
    replay_history,
)
from repro.index import LifetimeIndex, TemporalFullTextIndex
from repro.workload import TDocGenerator, build_collection, load_figure1
from repro.xmlcore import serialize



@pytest.fixture
def populated():
    store = TemporalDocumentStore(snapshot_interval=3)
    load_figure1(store)
    build_collection(
        store, n_docs=2, versions_per_doc=4,
        generator=TDocGenerator(seed=9),
        start_ts=parse_date("01/03/2001"),
    )
    store.delete("doc2.xml", ts=parse_date("01/04/2001"))
    return store


class TestRoundTrip:
    def test_every_version_identical(self, populated, tmp_path):
        path = tmp_path / "archive.xml"
        dump_store(populated, str(path))
        loaded = load_store(str(path))
        for name in populated.documents(include_deleted=True):
            original_index = populated.delta_index(name)
            loaded_index = loaded.delta_index(name)
            assert len(original_index) == len(loaded_index)
            assert original_index.deleted_at == loaded_index.deleted_at
            for entry in original_index.entries:
                assert (
                    loaded_index.entry(entry.number).timestamp
                    == entry.timestamp
                )
                original_tree = populated.version(name, entry.number)
                loaded_tree = loaded.version(name, entry.number)
                assert serialize(original_tree) == serialize(loaded_tree)
                # XIDs and element timestamps survive exactly.
                assert [
                    (n.xid, n.tstamp) for n in loaded_tree.iter()
                ] == [(n.xid, n.tstamp) for n in original_tree.iter()]

    def test_doc_ids_and_names_stable(self, populated):
        archive = dump_store(populated)
        loaded = load_store(archive)
        for name in populated.documents(include_deleted=True):
            assert loaded.doc_id(name) == populated.doc_id(name)

    def test_clock_restored(self, populated):
        loaded = load_store(dump_store(populated))
        assert loaded.clock.now() == populated.clock.now()

    def test_allocator_state_restored(self, populated):
        loaded = load_store(dump_store(populated))
        for name in populated.documents(include_deleted=True):
            assert (
                loaded.record(name).allocator.next_xid
                == populated.record(name).allocator.next_xid
            )

    def test_updates_continue_after_load(self, populated):
        loaded = load_store(dump_store(populated))
        old_root = loaded.current("guide.com")
        number = loaded.update(
            "guide.com",
            "<guide><restaurant><name>Nuovo</name><price>9</price>"
            "</restaurant></guide>",
        )
        assert number == 4
        fresh = loaded.current("guide.com")
        # New XIDs continue past the restored allocator state.
        assert max(n.xid for n in fresh.iter()) > max(
            n.xid for n in old_root.iter()
        )

    def test_archive_is_valid_xml_text(self, populated, tmp_path):
        path = tmp_path / "archive.xml"
        dump_store(populated, str(path))
        text = path.read_text()
        assert text.startswith("<temporalstore")
        loaded = load_store(text)  # load from text as well as from path
        assert set(loaded.documents(include_deleted=True)) == set(
            populated.documents(include_deleted=True)
        )


class TestReplay:
    def test_indexes_match_online_state(self, populated):
        online_fti = TemporalFullTextIndex()
        online_life = LifetimeIndex()
        replay_history(populated, [online_fti, online_life])

        loaded = load_store(dump_store(populated))
        replayed_fti = TemporalFullTextIndex()
        replayed_life = LifetimeIndex()
        replay_history(loaded, [replayed_fti, replayed_life])

        assert replayed_fti.posting_count() == online_fti.posting_count()
        for word in online_fti.words():
            original = {
                (p.doc_id, p.xid, p.start, p.end)
                for p in online_fti.lookup_h(word)
            }
            rebuilt = {
                (p.doc_id, p.xid, p.start, p.end)
                for p in replayed_fti.lookup_h(word)
            }
            assert original == rebuilt, word
        assert len(replayed_life) == len(online_life)

    def test_replay_orders_events_globally(self, populated):
        seen = []

        class Recorder:
            def document_committed(self, event):
                seen.append(event.timestamp)

        replay_history(populated, [Recorder()])
        assert seen == sorted(seen)


class TestDatabaseFacade:
    def test_save_load_query_equivalence(self, tmp_path):
        db = TemporalXMLDatabase()
        load_figure1(db)
        path = tmp_path / "db.xml"
        db.save(str(path))
        restored = TemporalXMLDatabase.load(str(path))
        for query in (
            'SELECT R FROM doc("guide.com")[26/01/2001]/restaurant R',
            'SELECT TIME(R), R/price '
            'FROM doc("guide.com")[EVERY]/restaurant R '
            'WHERE R/name="Napoli"',
            'SELECT CREATE TIME(R) '
            'FROM doc("guide.com")[26/01/2001]/restaurant R',
        ):
            assert str(restored.query(query)) == str(db.query(query))

    def test_loaded_database_accepts_commits(self, tmp_path):
        db = TemporalXMLDatabase()
        load_figure1(db)
        path = tmp_path / "db.xml"
        db.save(str(path))
        restored = TemporalXMLDatabase.load(str(path))
        restored.update(
            "guide.com",
            "<guide><restaurant><name>Roma</name><price>30</price>"
            "</restaurant></guide>",
        )
        result = restored.query(
            'SELECT R/name FROM doc("guide.com")/restaurant R'
        )
        assert len(result) == 1
        # The FTI saw the new commit (it was subscribed after replay).
        assert restored.fti.lookup("roma")


class TestCorruptedArchives:
    """Damaged archive files must fail as StorageError, naming the file."""

    def _archive(self, populated, tmp_path):
        path = tmp_path / "archive.xml"
        dump_store(populated, str(path))
        return path

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.xml"
        path.write_text("")
        with pytest.raises(StorageError) as excinfo:
            load_store(str(path))
        assert str(path) in str(excinfo.value)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.xml"
        path.write_bytes(b"\x00\x01definitely not xml\xff")
        with pytest.raises(StorageError) as excinfo:
            load_store(str(path))
        assert str(path) in str(excinfo.value)

    def test_truncated_tail(self, populated, tmp_path):
        path = self._archive(populated, tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(StorageError) as excinfo:
            load_store(str(path))
        assert str(path) in str(excinfo.value)
        # Wrapped, not the raw parser exception.
        from repro.errors import CorruptArchiveError, XMLSyntaxError

        assert isinstance(excinfo.value, CorruptArchiveError)
        assert not isinstance(excinfo.value, XMLSyntaxError)
        assert excinfo.value.path == str(path)

    def test_parse_error_carries_offset(self, populated, tmp_path):
        from repro.errors import CorruptArchiveError

        path = self._archive(populated, tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - len(data) // 3])
        with pytest.raises(CorruptArchiveError) as excinfo:
            load_store(str(path))
        assert excinfo.value.offset is not None

    def test_bit_flip_fails_checksum(self, populated, tmp_path):
        from repro.storage.faults import flip_bit

        path = self._archive(populated, tmp_path)
        # Flip a text bit in the middle of the file; either the whole-file
        # CRC or a per-document checksum must catch it.
        flip_bit(str(path), path.stat().st_size // 2)
        with pytest.raises(StorageError) as excinfo:
            load_store(str(path))
        assert "checksum" in str(excinfo.value)

    def test_edited_document_fails_document_checksum(self, populated, tmp_path):
        path = self._archive(populated, tmp_path)
        text = path.read_text()
        # Surgical edit that keeps the XML well-formed: change one version
        # timestamp, then strip the whole-file footer so only the per-
        # document checksum can object.
        body, _, _ = text.rpartition("\n<!--crc32:")
        import re as _re

        edited = _re.sub(r'ts="(\d+)"', 'ts="1234567890"', body, count=1)
        path.write_text(edited)
        with pytest.raises(StorageError) as excinfo:
            load_store(str(path))
        assert "checksum" in str(excinfo.value)

    def test_bad_format_attr_from_file(self, populated, tmp_path):
        path = self._archive(populated, tmp_path)
        text = path.read_text()
        body, _, _ = text.rpartition("\n<!--crc32:")
        path.write_text(body.replace('format="1"', 'format="99"', 1))
        with pytest.raises(StorageError) as excinfo:
            load_store(str(path))
        assert "format" in str(excinfo.value)

    def test_bad_numeric_field(self, tmp_path):
        from repro.errors import CorruptArchiveError

        path = tmp_path / "bad.xml"
        path.write_text('<temporalstore format="1" clock="soon"/>')
        with pytest.raises(CorruptArchiveError):
            load_store(str(path))

    def test_verify_false_skips_checksums(self, populated, tmp_path):
        path = self._archive(populated, tmp_path)
        text = path.read_text()
        body, _, _ = text.rpartition("\n<!--crc32:")
        # Destroy only the whole-file footer.
        path.write_text(body + "\n<!--crc32:00000000-->\n")
        with pytest.raises(StorageError):
            load_store(str(path))
        loaded = load_store(str(path), verify=False)
        assert set(loaded.documents(include_deleted=True)) == set(
            populated.documents(include_deleted=True)
        )

    def test_archives_without_checksums_still_load(self, populated):
        # Pre-durability archives carried no checksum attributes; stripping
        # them must leave the archive loadable (format is unchanged).
        archive = dump_store(populated)
        for doc in archive.child_elements():
            doc.attrib.pop("checksum", None)
        loaded = load_store(serialize(archive))
        assert set(loaded.documents(include_deleted=True)) == set(
            populated.documents(include_deleted=True)
        )


class TestAtomicDump:
    def test_no_temp_file_left_behind(self, populated, tmp_path):
        path = tmp_path / "archive.xml"
        dump_store(populated, str(path))
        assert path.exists()
        assert not (tmp_path / "archive.xml.tmp").exists()

    def test_crash_during_dump_preserves_old_archive(self, populated, tmp_path):
        from repro.storage.faults import CrashError, FaultyFS

        path = tmp_path / "archive.xml"
        dump_store(populated, str(path))
        before = path.read_bytes()
        populated.update(
            "guide.com",
            "<guide><restaurant><name>Solo</name><price>5</price>"
            "</restaurant></guide>",
        )
        # Crash on the temp-file write: the published archive is untouched.
        with pytest.raises(CrashError):
            dump_store(populated, str(path), fs=FaultyFS(crash_at=1))
        assert path.read_bytes() == before
        loaded = load_store(str(path))
        assert len(loaded.delta_index("guide.com")) == len(
            load_store(before.decode("utf-8").rpartition("\n<!--crc32:")[0])
            .delta_index("guide.com")
        )


class TestArchiveValidation:
    def test_bad_format_rejected(self):
        from repro.xmlcore import Element

        bad = Element("temporalstore", {"format": "99", "clock": "0"})
        with pytest.raises(StorageError):
            load_store(bad)

    def test_unexpected_elements_rejected(self):
        from repro.xmlcore import Element

        archive = Element(
            "temporalstore", {"format": "1", "clock": "0"}
        )
        archive.append(Element("garbage"))
        with pytest.raises(StorageError):
            load_store(archive)

    def test_missing_current_rejected(self):
        from repro.xmlcore import Element

        archive = Element("temporalstore", {"format": "1", "clock": "0"})
        doc = Element(
            "document", {"id": "1", "name": "x", "nextxid": "5"}
        )
        version = Element("version", {"number": "1", "ts": "100"})
        doc.append(version)
        archive.append(doc)
        with pytest.raises(StorageError):
            load_store(archive)
