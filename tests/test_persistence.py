"""Tests for the store archive: dump, load, replay."""

import pytest

from repro import TemporalXMLDatabase
from repro.clock import parse_date
from repro.errors import StorageError
from repro.storage import TemporalDocumentStore
from repro.storage.persistence import (
    dump_store,
    load_store,
    replay_history,
)
from repro.index import LifetimeIndex, TemporalFullTextIndex
from repro.workload import TDocGenerator, build_collection, load_figure1
from repro.xmlcore import serialize

from tests.conftest import JAN_01, JAN_15, JAN_26, JAN_31


@pytest.fixture
def populated():
    store = TemporalDocumentStore(snapshot_interval=3)
    load_figure1(store)
    build_collection(
        store, n_docs=2, versions_per_doc=4,
        generator=TDocGenerator(seed=9),
        start_ts=parse_date("01/03/2001"),
    )
    store.delete("doc2.xml", ts=parse_date("01/04/2001"))
    return store


class TestRoundTrip:
    def test_every_version_identical(self, populated, tmp_path):
        path = tmp_path / "archive.xml"
        dump_store(populated, str(path))
        loaded = load_store(str(path))
        for name in populated.documents(include_deleted=True):
            original_index = populated.delta_index(name)
            loaded_index = loaded.delta_index(name)
            assert len(original_index) == len(loaded_index)
            assert original_index.deleted_at == loaded_index.deleted_at
            for entry in original_index.entries:
                assert (
                    loaded_index.entry(entry.number).timestamp
                    == entry.timestamp
                )
                original_tree = populated.version(name, entry.number)
                loaded_tree = loaded.version(name, entry.number)
                assert serialize(original_tree) == serialize(loaded_tree)
                # XIDs and element timestamps survive exactly.
                assert [
                    (n.xid, n.tstamp) for n in loaded_tree.iter()
                ] == [(n.xid, n.tstamp) for n in original_tree.iter()]

    def test_doc_ids_and_names_stable(self, populated):
        archive = dump_store(populated)
        loaded = load_store(archive)
        for name in populated.documents(include_deleted=True):
            assert loaded.doc_id(name) == populated.doc_id(name)

    def test_clock_restored(self, populated):
        loaded = load_store(dump_store(populated))
        assert loaded.clock.now() == populated.clock.now()

    def test_allocator_state_restored(self, populated):
        loaded = load_store(dump_store(populated))
        for name in populated.documents(include_deleted=True):
            assert (
                loaded.record(name).allocator.next_xid
                == populated.record(name).allocator.next_xid
            )

    def test_updates_continue_after_load(self, populated):
        loaded = load_store(dump_store(populated))
        old_root = loaded.current("guide.com")
        number = loaded.update(
            "guide.com",
            "<guide><restaurant><name>Nuovo</name><price>9</price>"
            "</restaurant></guide>",
        )
        assert number == 4
        fresh = loaded.current("guide.com")
        # New XIDs continue past the restored allocator state.
        assert max(n.xid for n in fresh.iter()) > max(
            n.xid for n in old_root.iter()
        )

    def test_archive_is_valid_xml_text(self, populated, tmp_path):
        path = tmp_path / "archive.xml"
        dump_store(populated, str(path))
        text = path.read_text()
        assert text.startswith("<temporalstore")
        loaded = load_store(text)  # load from text as well as from path
        assert set(loaded.documents(include_deleted=True)) == set(
            populated.documents(include_deleted=True)
        )


class TestReplay:
    def test_indexes_match_online_state(self, populated):
        online_fti = TemporalFullTextIndex()
        online_life = LifetimeIndex()
        replay_history(populated, [online_fti, online_life])

        loaded = load_store(dump_store(populated))
        replayed_fti = TemporalFullTextIndex()
        replayed_life = LifetimeIndex()
        replay_history(loaded, [replayed_fti, replayed_life])

        assert replayed_fti.posting_count() == online_fti.posting_count()
        for word in online_fti.words():
            original = {
                (p.doc_id, p.xid, p.start, p.end)
                for p in online_fti.lookup_h(word)
            }
            rebuilt = {
                (p.doc_id, p.xid, p.start, p.end)
                for p in replayed_fti.lookup_h(word)
            }
            assert original == rebuilt, word
        assert len(replayed_life) == len(online_life)

    def test_replay_orders_events_globally(self, populated):
        seen = []

        class Recorder:
            def document_committed(self, event):
                seen.append(event.timestamp)

        replay_history(populated, [Recorder()])
        assert seen == sorted(seen)


class TestDatabaseFacade:
    def test_save_load_query_equivalence(self, tmp_path):
        db = TemporalXMLDatabase()
        load_figure1(db)
        path = tmp_path / "db.xml"
        db.save(str(path))
        restored = TemporalXMLDatabase.load(str(path))
        for query in (
            'SELECT R FROM doc("guide.com")[26/01/2001]/restaurant R',
            'SELECT TIME(R), R/price '
            'FROM doc("guide.com")[EVERY]/restaurant R '
            'WHERE R/name="Napoli"',
            'SELECT CREATE TIME(R) '
            'FROM doc("guide.com")[26/01/2001]/restaurant R',
        ):
            assert str(restored.query(query)) == str(db.query(query))

    def test_loaded_database_accepts_commits(self, tmp_path):
        db = TemporalXMLDatabase()
        load_figure1(db)
        path = tmp_path / "db.xml"
        db.save(str(path))
        restored = TemporalXMLDatabase.load(str(path))
        restored.update(
            "guide.com",
            "<guide><restaurant><name>Roma</name><price>30</price>"
            "</restaurant></guide>",
        )
        result = restored.query(
            'SELECT R/name FROM doc("guide.com")/restaurant R'
        )
        assert len(result) == 1
        # The FTI saw the new commit (it was subscribed after replay).
        assert restored.fti.lookup("roma")


class TestArchiveValidation:
    def test_bad_format_rejected(self):
        from repro.xmlcore import Element

        bad = Element("temporalstore", {"format": "99", "clock": "0"})
        with pytest.raises(StorageError):
            load_store(bad)

    def test_unexpected_elements_rejected(self):
        from repro.xmlcore import Element

        archive = Element(
            "temporalstore", {"format": "1", "clock": "0"}
        )
        archive.append(Element("garbage"))
        with pytest.raises(StorageError):
            load_store(archive)

    def test_missing_current_rejected(self):
        from repro.xmlcore import Element

        archive = Element("temporalstore", {"format": "1", "clock": "0"})
        doc = Element(
            "document", {"id": "1", "name": "x", "nextxid": "5"}
        )
        version = Element("version", {"number": "1", "ts": "100"})
        doc.append(version)
        archive.append(doc)
        with pytest.raises(StorageError):
            load_store(archive)
