"""Property-based round trips: random histories survive journal + recovery.

For seeded random workloads from :class:`~repro.workload.tdocgen.TDocGenerator`
(creates, evolving updates, deletions, interleaved checkpoints), recovering
the directory must reproduce the store *exactly*:

* byte-identical archive serialization (covers every version, delta,
  snapshot, timestamp, deletion mark, and the clock),
* identical XID-allocator state per document,
* identical temporal full-text index answers (``lookup_t``) at every
  commit timestamp.
"""

import random

import pytest

from repro import TemporalXMLDatabase
from repro.storage.persistence import build_archive
from repro.workload import TDocGenerator
from repro.xmlcore import serialize

SEEDS = range(20)


def random_history(db, seed):
    """Seeded random workload; returns the names it created."""
    rng = random.Random(seed * 7919 + 13)
    generator = TDocGenerator(seed=seed, depth=2, fanout=(2, 3))
    names = [f"doc{i}.xml" for i in range(rng.randint(1, 3))]
    live = set()
    for name in names:
        db.put(name, generator.document(name))
        live.add(name)
    for _step in range(rng.randint(5, 14)):
        roll = rng.random()
        if roll < 0.08 and len(live) > 1:
            name = rng.choice(sorted(live))
            db.delete(name)
            live.discard(name)
        elif roll < 0.22:
            db.checkpoint()
        elif live:
            name = rng.choice(sorted(live))
            db.update(name, generator.evolve(name))
    return names


def fti_answers(db):
    """Every word's lookup_t posting set at every commit timestamp."""
    timestamps = sorted(
        {
            entry.timestamp
            for name in db.documents(include_deleted=True)
            for entry in db.store.delta_index(name).entries
        }
    )
    answers = {}
    for word in sorted(db.fti.words()):
        for ts in timestamps:
            answers[(word, ts)] = sorted(
                (p.doc_id, p.xid, p.start, p.end)
                for p in db.fti.lookup_t(word, ts)
            )
    return answers


@pytest.mark.parametrize("seed", SEEDS)
def test_random_history_round_trip(tmp_path, seed):
    snapshot_interval = 3 if seed % 2 else None
    db = TemporalXMLDatabase.open(
        tmp_path / "db",
        durability="journal",
        snapshot_interval=snapshot_interval,
    )
    names = random_history(db, seed)
    db.close()

    recovered = TemporalXMLDatabase.open(
        tmp_path / "db",
        durability="journal",
        snapshot_interval=snapshot_interval,
    )
    try:
        # Byte-identical serialization of the full store state.
        assert serialize(build_archive(recovered.store)) == serialize(
            build_archive(db.store)
        )
        # XID allocator state per document.
        for name in names:
            assert (
                recovered.store.record(name).allocator.next_xid
                == db.store.record(name).allocator.next_xid
            )
        # Temporal FTI answers at every commit timestamp.
        assert fti_answers(recovered) == fti_answers(db)
        # The clock continues exactly where the original left off.
        assert recovered.now() == db.now()
    finally:
        recovered.close()


@pytest.mark.parametrize("seed", [1, 6, 11])
def test_second_generation_round_trip(tmp_path, seed):
    """Recover, keep committing, recover again — still byte-identical."""
    db = TemporalXMLDatabase.open(tmp_path / "db", durability="fsync")
    random_history(db, seed)
    db.close()

    middle = TemporalXMLDatabase.open(tmp_path / "db", durability="fsync")
    generator = TDocGenerator(seed=seed + 100, depth=2, fanout=(2, 3))
    middle.put("late.xml", generator.document("late.xml"))
    middle.update("late.xml", generator.evolve("late.xml"))
    middle.checkpoint()
    middle.update("late.xml", generator.evolve("late.xml"))
    middle.close()

    final = TemporalXMLDatabase.open(tmp_path / "db", durability="fsync")
    try:
        assert serialize(build_archive(final.store)) == serialize(
            build_archive(middle.store)
        )
        assert fti_answers(final) == fti_answers(middle)
    finally:
        final.close()
