"""Unit tests for planner internals: anchoring, pushdown, pattern shapes,
and index/navigation equivalence on synthetic collections."""

import pytest

from repro.index import TemporalFullTextIndex
from repro.query import QueryEngine
from repro.query.parser import parse_query
from repro.query.planner import (
    _anchored,
    _build_pattern,
    _pushable_value,
    _resolve_documents,
)
from repro.storage import TemporalDocumentStore
from repro.workload import TDocGenerator, build_collection
from repro.xmlcore.path import Path


class TestAnchoring:
    def test_exact_child_chain(self):
        steps = Path("restaurant/name").steps
        assert _anchored("guide/restaurant/name", steps)
        assert not _anchored("guide/menu/restaurant/name", steps)
        assert not _anchored("guide/restaurant", steps)

    def test_descendant_step(self):
        steps = Path("//price").steps
        assert _anchored("guide/price", steps)
        assert _anchored("guide/restaurant/menu/price", steps)
        assert not _anchored("guide/restaurant", steps)

    def test_mixed_axes(self):
        steps = Path("restaurant//price").steps
        assert _anchored("guide/restaurant/price", steps)
        assert _anchored("guide/restaurant/menu/price", steps)
        assert not _anchored("guide/other/menu/price", steps)

    def test_root_segment_is_skipped(self):
        # The first segment is the document root tag, matched by no step.
        steps = Path("a").steps
        assert _anchored("anyroot/a", steps)
        assert not _anchored("a", steps)


class TestPushdown:
    def _where(self, text):
        return parse_query(
            f'SELECT R FROM doc("g")/r R WHERE {text}'
        ).where

    def test_simple_equality(self):
        pushdown = _pushable_value("R", self._where('R/name = "Napoli"'))
        steps, value = pushdown
        assert [s.tag for s in steps] == ["name"]
        assert value == "Napoli"

    def test_reversed_sides(self):
        pushdown = _pushable_value("R", self._where('"Napoli" = R/name'))
        assert pushdown[1] == "Napoli"

    def test_conjunction_finds_it(self):
        pushdown = _pushable_value(
            "R", self._where('R/price < 10 AND R/name = "Napoli"')
        )
        assert pushdown is not None

    def test_disjunction_not_pushed(self):
        assert _pushable_value(
            "R", self._where('R/name = "Napoli" OR R/price < 10')
        ) is None

    def test_other_variable_not_pushed(self):
        query = parse_query(
            'SELECT R FROM doc("g")/r R, doc("g")/r S '
            'WHERE S/name = "Napoli"'
        )
        assert _pushable_value("R", query.where) is None
        assert _pushable_value("S", query.where) is not None

    def test_non_literal_not_pushed(self):
        assert _pushable_value(
            "R", self._where("R/name = R/alias")
        ) is None

    def test_numeric_literal_pushed(self):
        pushdown = _pushable_value("R", self._where("R/price = 15"))
        assert pushdown[1] == 15

    def test_bare_variable_equality(self):
        pushdown = _pushable_value("R", self._where('R = "Napoli"'))
        steps, value = pushdown
        assert steps == [] and value == "Napoli"


class TestBuildPattern:
    def test_projects_last_from_step(self):
        pattern = _build_pattern(Path("restaurant/menu").steps, None)
        assert pattern.projected_index() == 1
        assert [n.term for n in pattern.nodes()] == ["restaurant", "menu"]

    def test_pushdown_chain_hangs_below_projection(self):
        pattern = _build_pattern(
            Path("restaurant").steps,
            (Path("name").steps, "Napoli"),
        )
        terms = [n.term for n in pattern.nodes()]
        assert terms == ["restaurant", "name", "napoli"]
        assert pattern.projected_index() == 0
        edges = pattern.edges()
        assert (0, 1, "child") in edges
        assert (1, 2, "contains") in edges

    def test_bare_variable_pushdown_words_on_projection(self):
        pattern = _build_pattern(Path("restaurant").steps, ([], "Napoli"))
        assert pattern.edges() == [(0, 1, "contains")]


class TestResolveDocuments:
    def test_exact_name(self, figure1_store):
        store, *_ = figure1_store
        assert _resolve_documents(store, "guide.com") == [
            store.doc_id("guide.com")
        ]

    def test_glob_includes_deleted(self, figure1_store):
        store, *_ = figure1_store
        store.put("guide.org", "<guide/>")
        store.delete("guide.org")
        assert len(_resolve_documents(store, "guide.*")) == 2
        assert _resolve_documents(store, "*.net") == []


class TestIndexNavEquivalence:
    """The two strategies must agree on a messy synthetic collection."""

    QUERIES = (
        'SELECT I FROM doc("*")[EVERY]//item I',
        'SELECT TIME(I) FROM doc("doc1.xml")[EVERY]//item I',
        'SELECT COUNT(S) FROM doc("*")//section S',
    )

    @pytest.fixture
    def engine(self):
        store = TemporalDocumentStore()
        fti = store.subscribe(TemporalFullTextIndex())
        build_collection(
            store, n_docs=3, versions_per_doc=5,
            generator=TDocGenerator(seed=31),
        )
        return QueryEngine(store, fti=fti)

    @pytest.mark.parametrize("query", QUERIES)
    def test_agree(self, engine, query):
        engine.options.use_pattern_index = True
        indexed = sorted(str(engine.execute(query)).splitlines())
        engine.options.use_pattern_index = False
        navigated = sorted(str(engine.execute(query)).splitlines())
        assert indexed == navigated
