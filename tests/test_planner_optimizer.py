"""The cost-based optimizer (ROADMAP item 3): equivalence and estimates.

Three layers of coverage:

* a randomized equivalence suite — the optimizer must be *invisible* in
  results: byte-identical output with ``use_optimizer`` on vs. off, and
  the same row set as the navigational baseline (order-insensitive, the
  bar the option matrix uses across configurations);
* an EXPLAIN / EXPLAIN ANALYZE regression — plans expose priced
  alternatives with exactly one chosen, and executed scans report
  estimated next to actual rows;
* unit tests for the statistics layer (windowed lookups, term statistics,
  the ``auto`` lifetime decision, conjunct ordering).
"""

import random

import pytest

from repro.clock import SECONDS_PER_DAY, format_timestamp, parse_date
from repro.errors import QueryPlanError
from repro.index import LifetimeIndex, TemporalFullTextIndex
from repro.index.statistics import CorpusStatistics
from repro.query import QueryEngine, QueryOptions
from repro.query.optimizer import AUTO_LIFETIME_VERSIONS
from repro.query.parser import parse_query
from repro.storage import TemporalDocumentStore
from repro.workload import RestaurantGuideGenerator, load_figure1

START = parse_date("01/01/2001")


def _collect_texts(tree, tag, out):
    for child in getattr(tree, "children", ()):
        if getattr(child, "tag", None) == tag:
            out.add(child.text_content().strip())
        _collect_texts(child, tag, out)


@pytest.fixture(scope="module")
def corpus():
    """Three independently evolving guides plus per-tag vocabularies."""
    store = TemporalDocumentStore()
    fti = store.subscribe(TemporalFullTextIndex())
    lifetime = store.subscribe(LifetimeIndex())
    vocab = {"name": set(), "street": set(), "price": set()}
    for i in range(3):
        generator = RestaurantGuideGenerator(
            n_restaurants=4, seed=100 + i, p_price_change=0.4,
            p_close=0.1, p_open=0.1, p_rename=0.1, p_reintroduce=0.1,
        )
        # The store clock is monotonic, so the guides load sequentially:
        # g0 lives on days 0-7, g1 on 10-17, g2 on 20-27.
        versions = generator.load_into(
            store, name=f"g{i}.com", count=8,
            start_ts=START + i * 10 * SECONDS_PER_DAY,
        )
        for _ts, tree in versions:
            for tag in vocab:
                _collect_texts(tree, tag, vocab[tag])
    return store, fti, lifetime, {tag: sorted(vs) for tag, vs in vocab.items()}


def _engine(corpus, **overrides):
    store, fti, lifetime, _vocab = corpus
    overrides.setdefault("lifetime_strategy", "auto")
    options = QueryOptions(**overrides)
    return QueryEngine(store, fti=fti, lifetime=lifetime, options=options)


def _random_queries(vocab, count=24, seed=7):
    rng = random.Random(seed)

    def name():
        return rng.choice(vocab["name"])

    def street():
        return rng.choice(vocab["street"])

    def price():
        return rng.choice(vocab["price"])

    def date(lo=0, hi=30):
        return format_timestamp(
            START + rng.randint(lo, hi) * SECONDS_PER_DAY
        )

    def doc():
        return f"g{rng.randint(0, 2)}.com"

    templates = (
        lambda: (
            f'SELECT R FROM doc("{doc()}")[{date()}]/restaurant R '
            f'WHERE R/name = "{name()}" AND R/street = "{street()}"'
        ),
        lambda: (
            f'SELECT R/name, R/price FROM doc("{doc()}")[EVERY]/restaurant R '
            f'WHERE R/price = {price()} AND R/name = "{name()}"'
        ),
        lambda: (
            f'SELECT TIME(R), R/name FROM doc("*")[EVERY]/restaurant R '
            f"WHERE TIME(R) >= {date()} AND R/price = {price()}"
        ),
        lambda: (
            f'SELECT DISTINCT R/name FROM doc("{doc()}")[EVERY]/restaurant R '
            f"WHERE CREATE TIME(R) >= {date()}"
        ),
        lambda: (
            f'SELECT R/name, S/name FROM doc("g0.com")[{date(12, 30)}]'
            f'/restaurant R, doc("g1.com")[{date(12, 30)}]/restaurant S '
            f"WHERE R/name = S/name"
        ),
        lambda: (
            f'SELECT R/name, S/price FROM doc("g1.com")[EVERY]/restaurant R, '
            f'doc("g2.com")[{date(20, 30)}]/restaurant S '
            f'WHERE R/name = "{name()}" AND S/price > {price()}'
        ),
        lambda: (
            f'SELECT COUNT(R) FROM doc("*")[EVERY]/restaurant R '
            f'WHERE R/name = "{name()}"'
        ),
        lambda: (
            f'SELECT R/price FROM doc("{doc()}")[EVERY]/restaurant R '
            f'WHERE R/name = "{name()}" LIMIT 3'
        ),
    )
    return [rng.choice(templates)() for _ in range(count)]


class TestRandomizedEquivalence:
    def test_optimizer_output_is_byte_identical(self, corpus):
        on = _engine(corpus)
        off = _engine(corpus, use_optimizer=False)
        for query in _random_queries(corpus[3]):
            assert str(on.execute(query)) == str(off.execute(query)), query

    def test_matches_navigational_baseline(self, corpus):
        on = _engine(corpus)
        nav = _engine(
            corpus, use_optimizer=False, use_pattern_index=False,
            lifetime_strategy="traverse",
        )
        for query in _random_queries(corpus[3]):
            expected = sorted(str(nav.execute(query)).splitlines())
            assert sorted(str(on.execute(query)).splitlines()) == expected, (
                query
            )

    def test_error_behavior_matches_textual_order(self, corpus):
        """Conjunct reordering must not change *whether* a query raises.

        ``TIME(R/price)`` is ill-typed (TIME wants a bare variable) but
        only raises for rows that survive the earlier conjuncts — the
        evaluator short-circuits AND left to right.  Raising conjuncts
        are reordering barriers, so a filter that textually precedes one
        still runs first with the optimizer on.
        """
        on = _engine(corpus)
        off = _engine(corpus, use_optimizer=False)
        suppressed = (
            'SELECT R/name FROM doc("g0.com")[EVERY]/restaurant R '
            'WHERE R/name = "no such restaurant" '
            "AND TIME(R/price) >= 01/01/2001"
        )
        assert str(on.execute(suppressed)) == str(off.execute(suppressed))
        assert len(on.execute(suppressed)) == 0

        matching = corpus[3]["name"][0]
        raising = (
            'SELECT R/name FROM doc("*")[EVERY]/restaurant R '
            f'WHERE R/name = "{matching}" AND TIME(R/price) >= 01/01/2001'
        )
        with pytest.raises(QueryPlanError):
            on.execute(raising)
        with pytest.raises(QueryPlanError):
            off.execute(raising)

    def test_planner_counters_moved(self, corpus):
        engine = _engine(corpus)
        for query in _random_queries(corpus[3], count=8, seed=11):
            engine.execute(query)
        counters = engine.optimizer.counters
        assert counters.plans > 0
        assert counters.index_chosen > 0
        assert counters.pushdowns_added > 0
        assert counters.conjuncts_reordered > 0


class TestExplainShapes:
    def test_alternatives_priced_with_one_chosen(self, corpus):
        engine = _engine(corpus)
        (info,) = engine.explain(
            'SELECT R FROM doc("g0.com")[EVERY]/restaurant R '
            'WHERE R/name = "Napoli 1"'
        )
        assert info["strategy"] in ("index", "navigate")
        alternatives = info["alternatives"]
        assert {a["strategy"] for a in alternatives} == {"index", "navigate"}
        assert sum(a["chosen"] for a in alternatives) == 1
        for alternative in alternatives:
            assert alternative["cost"] >= 0
            assert alternative["rows"] >= 0
        assert info["est_rows"] >= 0
        assert info["est_cost"] >= 0

    def test_multiple_pushdowns_listed(self, corpus):
        engine = _engine(corpus)
        (info,) = engine.explain(
            'SELECT R FROM doc("g0.com")[EVERY]/restaurant R '
            'WHERE R/name = "Napoli 1" AND R/street = "street 1"'
        )
        if info["strategy"] == "index":
            assert len(info.get("pushdowns", [])) == 2

    def test_explain_text_renders_alternatives(self, corpus):
        engine = _engine(corpus)
        text = engine.explain_text(
            'SELECT R FROM doc("g0.com")[EVERY]/restaurant R '
            'WHERE R/name = "Napoli 1"'
        )
        assert "estimate:" in text
        assert "navigate (NavScan)" in text

    def test_disabled_optimizer_keeps_legacy_shape(self, corpus):
        engine = _engine(corpus, use_optimizer=False)
        (info,) = engine.explain(
            'SELECT R FROM doc("g0.com")[EVERY]/restaurant R '
            'WHERE R/street = "street 1" AND R/name = "Napoli 1"'
        )
        if info["strategy"] == "index":
            # Legacy rule: only the first pushable conjunct is pushed.
            assert "pushdowns" not in info
            assert info["pushdown"] == "street 1"


class TestEstimateAccounting:
    def test_est_vs_actual_rows_reported(self, corpus):
        engine = _engine(corpus)
        report = engine.explain_analyze(
            'SELECT R/name FROM doc("g0.com")'
            f"[{format_timestamp(START + 5 * SECONDS_PER_DAY)}]"
            "/restaurant R"
        )
        accounting = report.row_accounting()
        assert accounting, "no estimated operators in the trace"
        scan = accounting[0]
        assert scan["operator"] in ("TPatternScan", "NavScan")
        assert isinstance(scan["est_rows"], int)
        # Snapshot scan estimates are upper bounds (minimum posting-list
        # prefix): completed scans must never exceed them.
        assert scan["rows"] <= scan["est_rows"]
        assert "(est=" in report.render()

    def test_every_scan_accounts_estimates(self, corpus):
        engine = _engine(corpus)
        report = engine.explain_analyze(
            'SELECT R/name FROM doc("g1.com")[EVERY]/restaurant R '
            'WHERE R/name = "Napoli 1"'
        )
        accounting = report.row_accounting()
        assert accounting
        for entry in accounting:
            assert entry["est_rows"] >= 0
            if entry["rows"] and entry["complete"]:
                assert entry["est_rows"] > 0


class TestStatisticsLayer:
    @pytest.fixture(scope="class")
    def figure1(self):
        store = TemporalDocumentStore()
        fti = store.subscribe(TemporalFullTextIndex())
        lifetime = store.subscribe(LifetimeIndex())
        load_figure1(store)
        return store, fti, lifetime

    def test_lookup_w_equals_filtered_history(self, figure1):
        store, fti, _lifetime = figure1
        lo = parse_date("05/01/2001")
        hi = parse_date("20/01/2001")
        for word in ("napoli", "restaurant", "price", "30"):
            full = [
                p for p in fti.lookup_h(word)
                if p.start < hi and p.end > lo
            ]
            assert fti.lookup_w(word, lo, hi) == full
        assert fti.lookup_w("napoli", hi, hi) == []

    def test_term_statistics_match_lookups(self, figure1):
        store, fti, _lifetime = figure1
        statistics = CorpusStatistics(store, fti)
        history, open_now = statistics.term_counts("napoli")
        assert history == len(fti.lookup_h("napoli"))
        assert open_now == len(fti.lookup("napoli"))
        ts = parse_date("26/01/2001")
        assert statistics.term_scan_at("napoli", ts) >= len(
            fti.lookup_t("napoli", ts)
        )
        rarest = statistics.rarest_token("Napoli")
        assert rarest == ("napoli", history)

    def test_version_and_chain_statistics(self, figure1):
        store, fti, _lifetime = figure1
        statistics = CorpusStatistics(store, fti)
        doc_id = store.doc_id("guide.com")
        dindex = store.delta_index(doc_id)
        assert statistics.version_count(doc_id) == len(dindex.entries)
        assert statistics.element_count(doc_id) > 0
        depth = statistics.delta_chain_depth(doc_id, parse_date("02/01/2001"))
        assert depth >= 0

    def test_auto_lifetime_strategy(self, figure1):
        store, fti, lifetime = figure1
        engine = QueryEngine(
            store, fti=fti, lifetime=lifetime,
            options=QueryOptions(lifetime_strategy="auto"),
        )
        result = engine.execute(
            'SELECT DISTINCT R/name FROM doc("guide.com")[EVERY]/restaurant R '
            "WHERE CREATE TIME(R) >= 01/01/2001"
        )
        assert len(result) > 0
        counters = engine.optimizer.counters
        assert counters.auto_lifetime_index + counters.auto_lifetime_traverse > 0
        # Figure 1 has more versions than the crossover, so its document
        # resolves to the O(1) index.
        doc_id = store.doc_id("guide.com")
        assert statistics_version_count(store, fti, doc_id) \
            > AUTO_LIFETIME_VERSIONS
        bound_strategy = engine.optimizer.lifetime_strategy_for(
            _teid_for(store, doc_id)
        )
        assert bound_strategy == "index"
        # Without a lifetime index auto always traverses.
        bare = QueryEngine(
            store, fti=fti, lifetime=None,
            options=QueryOptions(lifetime_strategy="auto"),
        )
        assert bare.resolve_lifetime_strategy(None) == "traverse"

    def test_order_conjuncts_ranks_cheap_first(self, figure1):
        store, fti, lifetime = figure1
        engine = QueryEngine(store, fti=fti, lifetime=lifetime)
        query = parse_query(
            'SELECT R FROM doc("guide.com")[EVERY]/restaurant R '
            'WHERE R/name ~ "Napoli" AND R/price = 30 '
            "AND TIME(R) >= 15/01/2001"
        )
        ordered = engine.optimizer.order_conjuncts(query.where)
        from repro.query.planner import _conjuncts

        labels = [c.label() for c in _conjuncts(ordered)]
        assert "TIME" in labels[0]
        assert "~" in labels[-1]
        # Disabled: the clause is returned untouched.
        engine.options.use_optimizer = False
        assert engine.optimizer.order_conjuncts(query.where) is query.where


def statistics_version_count(store, fti, doc_id):
    return CorpusStatistics(store, fti).version_count(doc_id)


def _teid_for(store, doc_id):
    from repro.model.identifiers import TEID

    dindex = store.delta_index(doc_id)
    entry = dindex.entries[0]
    root = store.snapshot(doc_id, entry.timestamp)
    return TEID(doc_id, root.xid, entry.timestamp)
