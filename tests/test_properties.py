"""Property-based tests over the core invariants.

These are the load-bearing guarantees of the whole system:

1. diff/apply round-trip: for random tree pairs, applying the completed
   delta forwards yields the new tree, backwards the old tree — stamps
   included;
2. storage consistency: any reconstructed version equals the tree that was
   committed, for random version histories and snapshot intervals;
3. index/storage agreement: ``FTI_lookup_T(word, t)`` matches exactly the
   elements found by navigating the reconstructed snapshot at ``t``;
4. lifetime agreement: CreTime/DelTime by delta traversal equals the
   auxiliary-index answer for every element that ever lived.
"""

from __future__ import annotations

import random

import pytest

from hypothesis import given, settings, strategies as st

from repro.diff import apply_script, diff
from repro.index import LifetimeIndex, TemporalFullTextIndex, tokenize
from repro.model.identifiers import TEID, XIDAllocator
from repro.model.versioned import (
    stamp_new_nodes,
    verify_timestamp_invariant,
)
from repro.operators import CreTime, DelTime
from repro.storage import TemporalDocumentStore
from repro.xmlcore import serialize
from repro.xmlcore.node import Element, Text

_TAGS = ("a", "b", "item", "name")
_WORDS = ("alpha", "beta", "gamma", "delta", "omega", "15", "18")


def _random_tree(rng, depth=3, fanout=3):
    root = Element(rng.choice(_TAGS))
    if rng.random() < 0.4:
        root.attrib[rng.choice(("k", "m"))] = rng.choice(_WORDS)
    count = rng.randint(0, fanout) if depth > 0 else 0
    for _ in range(count):
        if rng.random() < 0.35:
            root.append(Text(" ".join(
                rng.choice(_WORDS) for _ in range(rng.randint(1, 3))
            )))
        else:
            root.append(_random_tree(rng, depth - 1, fanout))
    if not root.children and rng.random() < 0.7:
        root.append(Text(rng.choice(_WORDS)))
    return root


def _mutate(rng, tree):
    """A random plausible edit of a copy of ``tree`` (unstamped result)."""
    dup = tree.copy()
    for node in dup.iter():
        node.xid = None
        node.tstamp = None
    elements = [el for el in dup.iter_elements()]
    for _ in range(rng.randint(1, 4)):
        action = rng.random()
        target = rng.choice(elements)
        if action < 0.3:
            texts = [c for c in target.children if isinstance(c, Text)]
            if texts:
                rng.choice(texts).value = rng.choice(_WORDS)
            else:
                target.append(Text(rng.choice(_WORDS)))
        elif action < 0.5:
            target.append(_random_tree(rng, depth=1))
        elif action < 0.7:
            children = target.child_elements()
            if children:
                target.remove(rng.choice(children))
        elif action < 0.85:
            target.attrib[rng.choice(("k", "m"))] = rng.choice(_WORDS)
        else:
            children = target.children
            if len(children) >= 2:
                node = children[-1]
                target.remove(node)
                target.insert(0, node)
        elements = [el for el in dup.iter_elements()]
    return dup


def _stamps(tree):
    return [(n.xid, n.tstamp) for n in tree.iter()]


class TestDiffApplyRoundtrip:
    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_forward_and_backward(self, seed):
        rng = random.Random(seed)
        alloc = XIDAllocator()
        old = _random_tree(rng)
        stamp_new_nodes(old, alloc, 100)
        new = _mutate(rng, old)
        before = serialize(old)

        script = diff(old, new, alloc, commit_ts=200)
        assert serialize(old) == before  # the old tree is never mutated

        forward = apply_script(old.copy(), script)
        assert forward.equals_deep(new)
        assert _stamps(forward) == _stamps(new)

        backward = apply_script(new.copy(), script.invert())
        assert backward.equals_deep(old)
        assert _stamps(backward) == _stamps(old)

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_timestamp_invariant_after_diff(self, seed):
        rng = random.Random(seed)
        alloc = XIDAllocator()
        old = _random_tree(rng)
        stamp_new_nodes(old, alloc, 100)
        new = _mutate(rng, old)
        diff(old, new, alloc, commit_ts=200)
        assert verify_timestamp_invariant(new) == []

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_script_xml_roundtrip(self, seed):
        from repro.diff.editscript import EditScript
        from repro.xmlcore import parse

        rng = random.Random(seed)
        alloc = XIDAllocator()
        old = _random_tree(rng)
        stamp_new_nodes(old, alloc, 100)
        new = _mutate(rng, old)
        script = diff(old, new, alloc, commit_ts=200)
        decoded = EditScript.from_xml(parse(serialize(script.to_xml())))
        replayed = apply_script(old.copy(), decoded)
        assert replayed.equals_deep(new)


def _build_history(seed, versions, snapshot_interval):
    """Commit a random version chain; returns (store, committed sources)."""
    rng = random.Random(seed)
    store = TemporalDocumentStore(snapshot_interval=snapshot_interval)
    tree = _random_tree(rng)
    committed = [serialize(tree)]
    store.put("doc.xml", tree)
    current = store.record("doc.xml").current_root
    for _ in range(versions - 1):
        new = _mutate(rng, current)
        committed.append(serialize(new))
        store.update("doc.xml", new)
        current = store.record("doc.xml").current_root
    return store, committed


class TestStorageConsistency:
    @given(
        st.integers(0, 3_000),
        st.integers(2, 8),
        st.sampled_from([None, 2, 3]),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_version_reconstructs(self, seed, versions, interval):
        store, committed = _build_history(seed, versions, interval)
        for number, source in enumerate(committed, start=1):
            assert serialize(store.version("doc.xml", number)) == source

    @given(st.integers(0, 3_000), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_snapshot_at_commit_instants(self, seed, versions):
        store, committed = _build_history(seed, versions, None)
        dindex = store.delta_index("doc.xml")
        for entry, source in zip(dindex.entries, committed):
            snapshot = store.snapshot("doc.xml", entry.timestamp)
            assert serialize(snapshot) == source
            # Just before the commit: the previous version (or nothing).
            earlier = store.snapshot("doc.xml", entry.timestamp - 1)
            if entry.number == 1:
                assert earlier is None
            else:
                assert serialize(earlier) == committed[entry.number - 2]


class TestIndexAgreesWithStorage:
    @given(st.integers(0, 2_000), st.integers(2, 6))
    @settings(max_examples=15, deadline=None)
    def test_fti_lookup_t_matches_navigation(self, seed, versions):
        rng = random.Random(seed)
        store = TemporalDocumentStore()
        fti = store.subscribe(TemporalFullTextIndex())
        tree = _random_tree(rng)
        store.put("doc.xml", tree)
        current = store.record("doc.xml").current_root
        for _ in range(versions - 1):
            new = _mutate(rng, current)
            store.update("doc.xml", new)
            current = store.record("doc.xml").current_root

        dindex = store.delta_index("doc.xml")
        for entry in dindex.entries:
            ts = entry.timestamp
            snapshot = store.snapshot("doc.xml", ts)
            for word in _WORDS + _TAGS:
                expected = _elements_containing(snapshot, word)
                postings = fti.lookup_t(word, ts)
                found = {p.xid for p in postings}
                assert found == expected, (word, ts)

    @given(st.integers(0, 2_000), st.integers(2, 6))
    @settings(max_examples=15, deadline=None)
    def test_lifetime_strategies_agree(self, seed, versions):
        rng = random.Random(seed)
        store = TemporalDocumentStore()
        lifetime = store.subscribe(LifetimeIndex())
        tree = _random_tree(rng)
        store.put("doc.xml", tree)
        current = store.record("doc.xml").current_root
        for _ in range(versions - 1):
            new = _mutate(rng, current)
            store.update("doc.xml", new)
            current = store.record("doc.xml").current_root

        doc_id = store.doc_id("doc.xml")
        dindex = store.delta_index("doc.xml")
        # For every element alive in every version, both strategies agree.
        for entry in dindex.entries:
            snapshot = store.version("doc.xml", entry.number)
            for node in snapshot.iter():
                teid = TEID(doc_id, node.xid, entry.timestamp)
                traverse = CreTime(store, teid, "traverse").value()
                indexed = CreTime(store, teid, "index", lifetime).value()
                assert traverse == indexed
                del_traverse = DelTime(store, teid, "traverse").value()
                del_indexed = DelTime(store, teid, "index", lifetime).value()
                assert del_traverse == del_indexed


def _elements_containing(snapshot, word):
    """Ground truth: XIDs of elements whose name/attrs/direct text contain
    ``word`` — mirrors the index's occurrence attribution."""
    if snapshot is None:
        return set()
    out = set()
    for element in snapshot.iter_elements():
        terms = list(tokenize(element.tag))
        for value in element.attrib.values():
            terms.extend(tokenize(value))
        for child in element.children:
            if isinstance(child, Text):
                terms.extend(tokenize(child.value))
        if word in terms:
            out.add(element.xid)
    return out


class TestDeltaIndexFoldAgreement:
    """Alternative 2's event fold must equal alternative 1's intervals."""

    @given(st.integers(0, 2_000), st.integers(2, 6))
    @settings(max_examples=15, deadline=None)
    def test_event_fold_matches_content_index(self, seed, versions):
        from repro.index import DeltaOperationIndex

        rng = random.Random(seed)
        store = TemporalDocumentStore()
        content = store.subscribe(TemporalFullTextIndex())
        operations = store.subscribe(DeltaOperationIndex())
        tree = _random_tree(rng)
        store.put("doc.xml", tree)
        current = store.record("doc.xml").current_root
        for _ in range(versions - 1):
            new = _mutate(rng, current)
            store.update("doc.xml", new)
            current = store.record("doc.xml").current_root

        dindex = store.delta_index("doc.xml")
        for entry in dindex.entries:
            ts = entry.timestamp
            for word in _WORDS:
                by_fold = set(operations.lookup_t(word, ts))
                by_intervals = {
                    (p.doc_id, p.xid) for p in content.lookup_t(word, ts)
                }
                assert by_fold == by_intervals, (word, ts)


class TestSimilarityProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_bounded_and_reflexive(self, seed):
        from repro.equality import similarity

        rng = random.Random(seed)
        tree = _random_tree(rng)
        other = _mutate(rng, tree)
        score = similarity(tree, other)
        assert 0.0 <= score <= 1.0 + 1e-9
        assert similarity(tree, tree.copy()) == pytest.approx(1.0)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_symmetric(self, seed):
        from repro.equality import similarity

        rng = random.Random(seed)
        left = _random_tree(rng)
        right = _mutate(rng, left)
        assert similarity(left, right) == pytest.approx(
            similarity(right, left)
        )


class TestRewriterEquivalenceProperty:
    """Rewriting never changes answers on random version histories."""

    @given(st.integers(0, 2_000), st.integers(3, 6))
    @settings(max_examples=10, deadline=None)
    def test_windowed_history_queries(self, seed, versions):
        from repro.index import TemporalFullTextIndex as FTI
        from repro.query import QueryEngine
        from repro.clock import format_timestamp

        rng = random.Random(seed)
        store = TemporalDocumentStore()
        fti = store.subscribe(FTI())
        tree = _random_tree(rng)
        store.put("doc.xml", tree)
        current = store.record("doc.xml").current_root
        for _ in range(versions - 1):
            new = _mutate(rng, current)
            store.update("doc.xml", new)
            current = store.record("doc.xml").current_root

        dindex = store.delta_index("doc.xml")
        cutoff = format_timestamp(
            dindex.entries[rng.randrange(len(dindex.entries))].timestamp
        )
        query = (
            'SELECT TIME(D) FROM doc("doc.xml")[EVERY] D '
            f"WHERE TIME(D) >= {cutoff}"
        )
        engine = QueryEngine(store, fti=fti)
        engine.options.use_rewriter = True
        on = sorted(str(engine.execute(query)).splitlines())
        engine.options.use_rewriter = False
        off = sorted(str(engine.execute(query)).splitlines())
        assert on == off


class TestPersistenceProperty:
    """Archive round-trips preserve every version on random histories."""

    @given(st.integers(0, 2_000), st.integers(2, 6),
           st.sampled_from([None, 2]))
    @settings(max_examples=10, deadline=None)
    def test_dump_load_roundtrip(self, seed, versions, interval):
        from repro.storage.persistence import dump_store, load_store

        store, committed = _build_history(seed, versions, interval)
        loaded = load_store(dump_store(store))
        for number, source in enumerate(committed, start=1):
            assert serialize(loaded.version("doc.xml", number)) == source


class TestParserRoundtripProperty:
    """label() output re-parses to the same query shape."""

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_label_fixpoint(self, seed):
        from repro.query.parser import parse_query

        rng = random.Random(seed)
        query = _random_query_text(rng)
        parsed = parse_query(query)
        assert parse_query(parsed.label()).label() == parsed.label()


def _random_query_text(rng):
    paths = ("r", "r/name", "//price", "a/b/c")
    qualifiers = ("", "[EVERY]", "[26/01/2001]", "[NOW - 3 DAYS]")
    froms = []
    variables = []
    for index in range(rng.randint(1, 2)):
        var = f"V{index}"
        variables.append(var)
        chosen = rng.choice(paths)
        prefix = "" if chosen.startswith("//") else "/"
        froms.append(
            f'doc("d{index}"){rng.choice(qualifiers)}'
            f"{prefix}{chosen} {var}"
        )
    var = rng.choice(variables)
    selects = rng.choice(
        (
            var,
            f"{var}/name",
            f"TIME({var})",
            f"CURRENT({var})/name",
            f"COUNT({var})",
        )
    )
    wheres = rng.choice(
        (
            "",
            f' WHERE {var}/price < 10',
            f' WHERE {var}/name = "x" AND TIME({var}) >= 01/01/2001',
            f" WHERE NOT {var} ~ {var} OR {var} == {var}",
            f" WHERE CREATE TIME({var}) > NOW - 2 WEEKS",
        )
    )
    return f"SELECT {selects} FROM {', '.join(froms)}{wheres}"
