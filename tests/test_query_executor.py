"""End-to-end TXQL execution tests on the Figure 1 database."""

import pytest

from repro.clock import format_timestamp
from repro.errors import NoSuchDocumentError, QueryPlanError
from repro.xmlcore import Path, serialize

from tests.conftest import JAN_01, JAN_15, JAN_31


def _texts(result, column, path):
    out = []
    for row in result:
        value = row[column]
        nodes = value if isinstance(value, list) else [value]
        for node in nodes:
            tree = getattr(node, "tree", None)
            if tree is None:
                tree = getattr(node, "node", node)
            selected = Path(path).select(tree) if path else [tree]
            out.extend(s.text_content() for s in selected)
    return out


class TestPaperQueries:
    def test_q1_snapshot(self, figure1_db):
        result = figure1_db.query(
            'SELECT R FROM doc("guide.com")[26/01/2001]/restaurant R'
        )
        assert len(result) == 2
        assert sorted(_texts(result, "R", "name")) == ["Akropolis", "Napoli"]

    def test_q2_sum(self, figure1_db):
        result = figure1_db.query(
            'SELECT SUM(R) FROM doc("guide.com")[26/01/2001]/restaurant R'
        )
        assert result.scalar() == 2

    def test_q2_needs_no_reconstruction(self, figure1_db):
        repo = figure1_db.store.repository
        repo.delta_reads = 0
        repo.current_reads = 0
        figure1_db.query(
            'SELECT COUNT(R) FROM doc("guide.com")[26/01/2001]/restaurant R'
        )
        assert repo.delta_reads == 0
        assert repo.current_reads == 0

    def test_q3_price_history(self, figure1_db):
        result = figure1_db.query(
            'SELECT TIME(R), R/price FROM doc("guide.com")[EVERY]/restaurant R '
            'WHERE R/name="Napoli"'
        )
        times = [int(row["TIME(R)"]) for row in result]
        prices = _texts(result, "R/price", "")
        assert times == [JAN_01, JAN_15, JAN_31]
        assert prices == ["15", "15", "18"]

    def test_results_envelope(self, figure1_db):
        result = figure1_db.query(
            'SELECT R FROM doc("guide.com")[01/01/2001]/restaurant R'
        )
        xml = result.to_xml()
        assert xml.tag == "results"
        assert [c.tag for c in xml.child_elements()] == ["result"]
        assert "<name>Napoli</name>" in serialize(xml)


class TestTimeQualifiers:
    def test_default_is_current(self, figure1_db):
        result = figure1_db.query(
            'SELECT R/name FROM doc("guide.com")/restaurant R'
        )
        assert _texts(result, "R/name", "") == ["Napoli"]

    def test_now_minus_interval(self, figure1_db):
        figure1_db.store.clock.advance_to(JAN_31)
        result = figure1_db.query(
            'SELECT R/name FROM doc("guide.com")[NOW - 14 DAYS]/restaurant R'
        )
        assert sorted(_texts(result, "R/name", "")) == ["Akropolis", "Napoli"]

    def test_date_plus_interval(self, figure1_db):
        result = figure1_db.query(
            'SELECT R/name FROM doc("guide.com")[01/01/2001 + 1 WEEKS]/restaurant R'
        )
        assert _texts(result, "R/name", "") == ["Napoli"]

    def test_before_creation_is_empty(self, figure1_db):
        result = figure1_db.query(
            'SELECT R FROM doc("guide.com")[01/01/1999]/restaurant R'
        )
        assert len(result) == 0


class TestTemporalFunctions:
    def test_create_time_filter(self, figure1_db):
        result = figure1_db.query(
            'SELECT DISTINCT R/name FROM doc("guide.com")[EVERY]/restaurant R '
            "WHERE CREATE TIME(R) >= 11/01/2001"
        )
        assert _texts(result, "R/name", "") == ["Akropolis"]

    def test_delete_time(self, figure1_db):
        result = figure1_db.query(
            'SELECT DELETE TIME(R) FROM doc("guide.com")[15/01/2001]/restaurant R '
            'WHERE R/name="Akropolis"'
        )
        assert int(result.rows[0]["DELETE TIME(R)".replace("DELETE TIME", "DELETE_TIME")]) == JAN_31

    def test_previous_and_current(self, figure1_db):
        result = figure1_db.query(
            'SELECT PREVIOUS(R) FROM doc("guide.com")/restaurant R'
        )
        previous = result.rows[0]["PREVIOUS(R)"]
        assert previous.teid.timestamp == JAN_15
        result = figure1_db.query(
            'SELECT CURRENT(R) FROM doc("guide.com")[01/01/2001]/restaurant R'
        )
        current = result.rows[0]["CURRENT(R)"]
        assert current.teid.timestamp == JAN_31

    def test_previous_of_first_version_is_none(self, figure1_db):
        result = figure1_db.query(
            'SELECT PREVIOUS(R) FROM doc("guide.com")[01/01/2001]/restaurant R'
        )
        assert result.rows[0]["PREVIOUS(R)"] is None

    def test_diff_between_versions(self, figure1_db):
        result = figure1_db.query(
            'SELECT DIFF(PREVIOUS(R), R) FROM doc("guide.com")/restaurant R'
        )
        delta = result.rows[0]["DIFF(PREVIOUS(R), R)"]
        assert delta.tag == "delta"
        text = serialize(delta)
        assert "15" in text and "18" in text

    def test_time_of_version(self, figure1_db):
        result = figure1_db.query(
            'SELECT TIME(R) FROM doc("guide.com")[26/01/2001]/restaurant R'
        )
        assert {int(row["TIME(R)"]) for row in result} == {JAN_15}
        assert format_timestamp(JAN_15) in str(result)


class TestEqualityRegimes:
    def test_identity_join_across_versions(self, figure1_db):
        result = figure1_db.query(
            'SELECT R1/name FROM doc("guide.com")[01/01/2001]/restaurant R1, '
            'doc("guide.com")[31/01/2001]/restaurant R2 '
            "WHERE R1 == R2 AND R1/price < R2/price"
        )
        assert _texts(result, "R1/name", "") == ["Napoli"]

    def test_value_equality_numeric(self, figure1_db):
        result = figure1_db.query(
            'SELECT R/name FROM doc("guide.com")[26/01/2001]/restaurant R '
            "WHERE R/price = 13"
        )
        assert _texts(result, "R/name", "") == ["Akropolis"]

    def test_similarity_operator(self, figure1_db):
        result = figure1_db.query(
            'SELECT R2/price FROM doc("guide.com")[01/01/2001]/restaurant R1, '
            'doc("guide.com")[31/01/2001]/restaurant R2 WHERE R1 ~ R2'
        )
        assert _texts(result, "R2/price", "") == ["18"]

    def test_not_and_or(self, figure1_db):
        result = figure1_db.query(
            'SELECT R/name FROM doc("guide.com")[26/01/2001]/restaurant R '
            'WHERE NOT R/name = "Napoli" OR R/price > 14'
        )
        assert sorted(_texts(result, "R/name", "")) == ["Akropolis", "Napoli"]


class TestPlannerBehaviour:
    def test_index_and_nav_agree(self, figure1_db):
        queries = [
            'SELECT R/name FROM doc("guide.com")[26/01/2001]/restaurant R',
            'SELECT TIME(R), R/price FROM doc("guide.com")[EVERY]/restaurant R '
            'WHERE R/name="Napoli"',
            'SELECT COUNT(R) FROM doc("guide.com")[15/01/2001]/restaurant R',
        ]
        for text in queries:
            indexed = figure1_db.engine.execute(text)
            figure1_db.engine.options.use_pattern_index = False
            try:
                scanned = figure1_db.engine.execute(text)
            finally:
                figure1_db.engine.options.use_pattern_index = True
            assert str(indexed) == str(scanned), text

    def test_wildcard_path_falls_back(self, figure1_db):
        result = figure1_db.query(
            'SELECT R FROM doc("guide.com")[26/01/2001]/*/name R'
        )
        # `*` forces the navigational plan; R binds the two name elements.
        assert sorted(_texts(result, "R", "")) == ["Akropolis", "Napoli"]

    def test_descendant_from_path(self, figure1_db):
        result = figure1_db.query(
            'SELECT P FROM doc("guide.com")[26/01/2001]//price P'
        )
        assert sorted(_texts(result, "P", "")) == ["13", "15"]

    def test_doc_glob(self, figure1_db):
        figure1_db.put(
            "other.org", "<guide><restaurant><name>Solo</name></restaurant></guide>"
        )
        result = figure1_db.query('SELECT R/name FROM doc("*")/restaurant R')
        assert sorted(_texts(result, "R/name", "")) == ["Napoli", "Solo"]

    def test_unknown_document(self, figure1_db):
        with pytest.raises(NoSuchDocumentError):
            figure1_db.query('SELECT R FROM doc("ghost.com")/r R')


class TestResultSet:
    def test_scalars_and_errors(self, figure1_db):
        result = figure1_db.query(
            'SELECT COUNT(R) FROM doc("guide.com")/restaurant R'
        )
        assert result.scalars() == [1]
        multi = figure1_db.query(
            'SELECT R, TIME(R) FROM doc("guide.com")/restaurant R'
        )
        with pytest.raises(QueryPlanError):
            multi.scalar()

    def test_mixing_aggregates_rejected(self, figure1_db):
        with pytest.raises(QueryPlanError):
            figure1_db.query(
                'SELECT R, COUNT(R) FROM doc("guide.com")/restaurant R'
            )

    def test_distinct_collapses(self, figure1_db):
        result = figure1_db.query(
            'SELECT DISTINCT R/name FROM doc("guide.com")[EVERY]/restaurant R'
        )
        assert len(result) == 2

    def test_distinct_count_dedups_before_aggregation(self, figure1_db):
        # Regression: SELECT DISTINCT COUNT(...) used to ignore DISTINCT
        # (the single aggregate row is trivially distinct).  It now has
        # SQL COUNT(DISTINCT ...) semantics: dedup the aggregate's
        # arguments, then count.
        plain = figure1_db.query(
            'SELECT COUNT(R/name) FROM doc("guide.com")[EVERY]/restaurant R'
        )
        distinct = figure1_db.query(
            'SELECT DISTINCT COUNT(R/name) '
            'FROM doc("guide.com")[EVERY]/restaurant R'
        )
        assert plain.scalar() == 4
        assert distinct.scalar() == 2

    def test_distinct_count_over_empty_input_is_zero(self, figure1_db):
        result = figure1_db.query(
            'SELECT DISTINCT COUNT(R/name) '
            'FROM doc("guide.com")[EVERY]/restaurant R '
            'WHERE R/name = "nomatch"'
        )
        assert result.scalar() == 0

    def test_table_rendering(self, figure1_db):
        result = figure1_db.query(
            'SELECT R/name, R/price FROM doc("guide.com")/restaurant R'
        )
        text = str(result)
        assert "R/name" in text and "Napoli" in text


class TestLimit:
    def test_limit_truncates(self, figure1_db):
        result = figure1_db.query(
            'SELECT R FROM doc("guide.com")[26/01/2001]/restaurant R LIMIT 1'
        )
        assert len(result) == 1

    def test_limit_zero(self, figure1_db):
        result = figure1_db.query(
            'SELECT R FROM doc("guide.com")[26/01/2001]/restaurant R LIMIT 0'
        )
        assert len(result) == 0

    def test_limit_beyond_rows_is_noop(self, figure1_db):
        with_limit = figure1_db.query(
            'SELECT TIME(R) FROM doc("guide.com")[EVERY]/restaurant R LIMIT 99'
        )
        without = figure1_db.query(
            'SELECT TIME(R) FROM doc("guide.com")[EVERY]/restaurant R'
        )
        assert len(with_limit) == len(without) == 4

    def test_limit_applies_after_distinct(self, figure1_db):
        result = figure1_db.query(
            'SELECT DISTINCT R/name '
            'FROM doc("guide.com")[EVERY]/restaurant R LIMIT 1'
        )
        assert len(result) == 1

    def test_limit_on_aggregate_row(self, figure1_db):
        result = figure1_db.query(
            'SELECT COUNT(R) FROM doc("guide.com")/restaurant R LIMIT 0'
        )
        assert len(result) == 0

    def test_limit_preserves_order(self, figure1_db):
        full = figure1_db.query(
            'SELECT TIME(R) FROM doc("guide.com")[EVERY]/restaurant R'
        )
        limited = figure1_db.query(
            'SELECT TIME(R) FROM doc("guide.com")[EVERY]/restaurant R LIMIT 2'
        )
        assert [r["TIME(R)"] for r in limited] == [
            r["TIME(R)"] for r in full
        ][:2]

    def test_limit_stops_the_join_early(self, figure1_db):
        # Snapshot scans stream end-to-end: LIMIT must stop the structural
        # join before it emits (or even probes) the matches never taken.
        stats = figure1_db.engine.join_stats
        query = 'SELECT R FROM doc("guide.com")[26/01/2001]/restaurant R'

        stats.reset()
        figure1_db.query(query)
        full_emitted = stats.matches_emitted
        full_probed = stats.candidates_probed

        stats.reset()
        result = figure1_db.query(query + " LIMIT 1")
        assert len(result) == 1
        assert stats.matches_emitted < full_emitted
        assert stats.candidates_probed < full_probed


class TestPathApply:
    """The paper's Section 6.1 syntax: a path applied to a function result."""

    def test_current_r_name(self, figure1_db):
        result = figure1_db.query(
            'SELECT DISTINCT CURRENT(R)/name '
            'FROM doc("guide.com")[EVERY]/restaurant R'
        )
        names = [
            value.node.text_content()
            for row in result
            for value in (row["CURRENT(R)/name"] or [])
        ]
        assert names == ["Napoli"]  # Akropolis has no current version

    def test_previous_r_price(self, figure1_db):
        result = figure1_db.query(
            'SELECT PREVIOUS(R)/price FROM doc("guide.com")/restaurant R'
        )
        prices = [
            value.node.text_content()
            for row in result
            for value in row["PREVIOUS(R)/price"]
        ]
        assert prices == ["15"]

    def test_path_on_missing_navigation_is_empty(self, figure1_db):
        result = figure1_db.query(
            'SELECT PREVIOUS(R)/price '
            'FROM doc("guide.com")[01/01/2001]/restaurant R'
        )
        assert result.rows[0]["PREVIOUS(R)/price"] == []

    def test_path_apply_in_where(self, figure1_db):
        result = figure1_db.query(
            'SELECT R/name FROM doc("guide.com")[01/01/2001]/restaurant R '
            "WHERE CURRENT(R)/price > 15"
        )
        names = [
            value.node.text_content()
            for row in result
            for value in row["R/name"]
        ]
        assert names == ["Napoli"]

    def test_identity_via_path_apply(self, figure1_db):
        # Sub-elements reached through PathApply still carry identity.
        result = figure1_db.query(
            'SELECT R FROM doc("guide.com")/restaurant R '
            "WHERE CURRENT(R)/name == R/name"
        )
        assert len(result) == 1

    def test_label_round_trips(self):
        from repro.query.parser import parse_query

        q = parse_query(
            'SELECT CURRENT(R)/name FROM doc("g")/restaurant R'
        )
        assert q.select_items[0].label() == "CURRENT(R)/name"
        again = parse_query(q.label())
        assert again.label() == q.label()
