"""Tests for the TXQL lexer and parser."""

import pytest

from repro.clock import SECONDS_PER_DAY, parse_date
from repro.errors import QuerySyntaxError
from repro.query import parse_query, tokenize_query
from repro.query.ast import (
    EVERY,
    BinOp,
    DateLiteral,
    EveryWithin,
    FuncCall,
    IntervalLiteral,
    Literal,
    NotOp,
    NowLiteral,
    VarPath,
    bucket_call,
    is_aggregate_expr,
)
from repro.query.lexer import DATE, IDENT, NUMBER, STRING, SYMBOL


class TestLexer:
    def test_tokens(self):
        tokens = tokenize_query('SELECT R FROM doc("g.com") R')
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds == [IDENT, IDENT, IDENT, IDENT, SYMBOL, STRING, SYMBOL, IDENT]

    def test_date_not_three_numbers(self):
        tokens = tokenize_query("26/01/2001")
        assert tokens[0].kind == DATE
        assert tokens[0].value == "26/01/2001"

    def test_path_not_date(self):
        tokens = tokenize_query("R/price")
        assert [t.kind for t in tokens[:-1]] == [IDENT, SYMBOL, IDENT]

    def test_two_char_symbols(self):
        tokens = tokenize_query("a//b <= c == d != e >= f")
        symbols = [t.value for t in tokens if t.kind == SYMBOL]
        assert symbols == ["//", "<=", "==", "!=", ">="]

    def test_strings_both_quotes(self):
        tokens = tokenize_query("\"double\" 'single'")
        assert [t.value for t in tokens[:-1]] == ["double", "single"]

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError):
            tokenize_query('SELECT "oops')

    def test_junk_character(self):
        with pytest.raises(QuerySyntaxError):
            tokenize_query("SELECT R § FROM")

    def test_numbers(self):
        tokens = tokenize_query("15 3.25")
        assert [t.kind for t in tokens[:-1]] == [NUMBER, NUMBER]


class TestParserStructure:
    def test_q1_shape(self):
        q = parse_query(
            'SELECT R FROM doc("guide.com")[26/01/2001]/restaurant R'
        )
        assert len(q.select_items) == 1
        assert isinstance(q.select_items[0], VarPath)
        item = q.from_items[0]
        assert item.url == "guide.com"
        assert isinstance(item.time_spec, DateLiteral)
        assert item.time_spec.ts == parse_date("26/01/2001")
        assert item.path == "restaurant"
        assert item.var == "R"

    def test_every(self):
        q = parse_query('SELECT R FROM doc("g")[EVERY]/r R')
        assert q.from_items[0].time_spec is EVERY

    def test_no_qualifier_means_current(self):
        q = parse_query('SELECT R FROM doc("g")/r R')
        assert q.from_items[0].time_spec is None

    def test_descendant_path(self):
        q = parse_query('SELECT R FROM doc("g")//price R')
        assert q.from_items[0].path == "//price"

    def test_no_path_binds_root(self):
        q = parse_query('SELECT D FROM doc("g") D')
        assert q.from_items[0].path == ""

    def test_as_keyword_optional(self):
        q = parse_query('SELECT R FROM doc("g")/r AS R')
        assert q.from_items[0].var == "R"

    def test_multiple_from_items(self):
        q = parse_query(
            'SELECT R1 FROM doc("g")[01/01/2001]/r R1, doc("g")/r R2 '
            "WHERE R1/name = R2/name"
        )
        assert [f.var for f in q.from_items] == ["R1", "R2"]

    def test_distinct(self):
        q = parse_query('SELECT DISTINCT R FROM doc("g")/r R')
        assert q.distinct

    def test_label_round_trip_parses(self):
        text = (
            'SELECT TIME(R), R/price FROM doc("g")[EVERY]/restaurant R '
            'WHERE R/name = "Napoli"'
        )
        q = parse_query(text)
        again = parse_query(q.label())
        assert again.label() == q.label()

    def test_limit(self):
        q = parse_query('SELECT R FROM doc("g")/r R LIMIT 3')
        assert q.limit == 3

    def test_limit_zero(self):
        q = parse_query('SELECT R FROM doc("g")/r R LIMIT 0')
        assert q.limit == 0

    def test_no_limit_is_none(self):
        q = parse_query('SELECT R FROM doc("g")/r R')
        assert q.limit is None

    def test_limit_after_where(self):
        q = parse_query(
            'SELECT R FROM doc("g")/r R WHERE R/name = "x" LIMIT 2'
        )
        assert q.limit == 2
        assert q.where is not None

    def test_limit_label_round_trip(self):
        q = parse_query('SELECT R FROM doc("g")/r R LIMIT 5')
        assert "LIMIT 5" in q.label()
        assert parse_query(q.label()).limit == 5


class TestParserExpressions:
    def _where(self, text):
        return parse_query(f'SELECT R FROM doc("g")/r R WHERE {text}').where

    def test_comparison_operators(self):
        for op in ("=", "==", "~", "!=", "<", "<=", ">", ">="):
            expr = self._where(f"R/price {op} 10")
            assert isinstance(expr, BinOp) and expr.op == op

    def test_and_or_precedence(self):
        expr = self._where("R = 1 OR R = 2 AND R = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_parentheses(self):
        expr = self._where("(R = 1 OR R = 2) AND R = 3")
        assert expr.op == "AND"
        assert expr.left.op == "OR"

    def test_not(self):
        expr = self._where('NOT R/name = "X"')
        assert isinstance(expr, NotOp)

    def test_var_path_expression(self):
        expr = self._where("R/menu//price < 10")
        assert expr.left.path == "menu//price"

    def test_functions(self):
        q = parse_query(
            "SELECT TIME(R), PREVIOUS(R), DIFF(R, R) "
            'FROM doc("g")/r R'
        )
        names = [item.name for item in q.select_items]
        assert names == ["TIME", "PREVIOUS", "DIFF"]

    def test_two_word_functions(self):
        expr = self._where("CREATE TIME(R) >= 11/01/2001")
        assert expr.left.name == "CREATE_TIME"
        expr = self._where("DELETE TIME(R) < NOW")
        assert expr.left.name == "DELETE_TIME"

    def test_time_arithmetic(self):
        expr = self._where("TIME(R) > NOW - 14 DAYS")
        right = expr.right
        assert isinstance(right, BinOp) and right.op == "-"
        assert isinstance(right.left, NowLiteral)
        assert isinstance(right.right, IntervalLiteral)
        assert right.right.seconds == 14 * SECONDS_PER_DAY

    def test_date_plus_weeks_in_qualifier(self):
        q = parse_query(
            'SELECT R FROM doc("g")[26/01/2001 + 2 WEEKS]/r R'
        )
        spec = q.from_items[0].time_spec
        assert isinstance(spec, BinOp) and spec.op == "+"

    def test_aggregates_detected(self):
        q = parse_query('SELECT SUM(R), COUNT(R) FROM doc("g")/r R')
        assert all(is_aggregate_expr(e) for e in q.select_items)
        assert not is_aggregate_expr(Literal(1))

    def test_string_and_number_literals(self):
        q = parse_query(
            "SELECT R FROM doc(\"g\")/r R WHERE R/n = 'text' AND R/p = 3.5"
        )
        conj = q.where
        assert conj.left.right.value == "text"
        assert conj.right.right.value == 3.5


class TestSequencedSyntax:
    def test_select_coalesce(self):
        q = parse_query('SELECT COALESCE R/name FROM doc("g")[EVERY]/r R')
        assert q.coalesce
        assert not q.distinct

    def test_coalesce_defaults_off(self):
        q = parse_query('SELECT R FROM doc("g")/r R')
        assert not q.coalesce
        assert q.group_by is None

    def test_group_by_bucket_call(self):
        q = parse_query(
            'SELECT MONTH(R), COUNT(R) FROM doc("g")[EVERY]/r R '
            "GROUP BY MONTH(R)"
        )
        assert len(q.group_by) == 1
        assert isinstance(q.group_by[0], FuncCall)
        assert bucket_call(q.group_by[0]) == ("MONTH", "R")

    def test_group_by_var_path(self):
        q = parse_query(
            'SELECT R/name, COUNT(R) FROM doc("g")[EVERY]/r R '
            "GROUP BY R/name"
        )
        assert isinstance(q.group_by[0], VarPath)
        assert q.group_by[0].path == "name"

    def test_group_by_between_where_and_limit(self):
        q = parse_query(
            'SELECT YEAR(R), SUM(R/price) FROM doc("g")[EVERY]/r R '
            "WHERE R/price > 5 GROUP BY YEAR(R) LIMIT 2"
        )
        assert q.where is not None
        assert q.group_by is not None
        assert q.limit == 2

    def test_overlaps_comparison(self):
        q = parse_query(
            'SELECT R FROM doc("g")[EVERY]/r R, doc("h")[EVERY]/r S '
            "WHERE R OVERLAPS S"
        )
        assert isinstance(q.where, BinOp)
        assert q.where.op == "OVERLAPS"
        assert q.where.left.var == "R"
        assert q.where.right.var == "S"

    def test_overlaps_binds_tighter_than_and(self):
        q = parse_query(
            'SELECT R FROM doc("g")[EVERY]/r R, doc("h")[EVERY]/r S '
            'WHERE R OVERLAPS S AND R/name = "x"'
        )
        assert q.where.op == "AND"
        assert q.where.left.op == "OVERLAPS"

    def test_every_within_qualifier(self):
        q = parse_query('SELECT R FROM doc("g")[EVERY WITHIN 10 DAYS]/r R')
        spec = q.from_items[0].time_spec
        assert isinstance(spec, EveryWithin)
        assert spec.seconds == 10 * SECONDS_PER_DAY
        assert spec.label() == "EVERY WITHIN 10 DAYS"

    def test_sequenced_labels_round_trip(self):
        for text in (
            'SELECT COALESCE R/name FROM doc("g")[EVERY]/r R',
            'SELECT MONTH(R), AVG(R/price) FROM doc("g")[EVERY]/r R '
            "GROUP BY MONTH(R)",
            'SELECT R FROM doc("g")[EVERY WITHIN 2 WEEKS]/r R',
            'SELECT R FROM doc("g")[EVERY]/r R, doc("h")[EVERY]/r S '
            "WHERE R OVERLAPS S",
        ):
            q = parse_query(text)
            assert parse_query(q.label()).label() == q.label()

    @pytest.mark.parametrize(
        "bad",
        [
            # DISTINCT and COALESCE are mutually exclusive row regimes.
            'SELECT DISTINCT COALESCE R FROM doc("g")/r R',
            # COALESCE merges rows; aggregates/grouping collapse them.
            'SELECT COALESCE COUNT(R) FROM doc("g")[EVERY]/r R',
            'SELECT COALESCE R FROM doc("g")[EVERY]/r R GROUP BY R/name',
            # Grouping terms must not themselves aggregate.
            'SELECT COUNT(R) FROM doc("g")[EVERY]/r R GROUP BY COUNT(R)',
            # GROUP BY over a variable no FROM item binds.
            'SELECT X/name FROM doc("g")[EVERY]/r R GROUP BY X/name',
            # Window clause needs an integer amount and a known unit.
            'SELECT R FROM doc("g")[EVERY WITHIN ten DAYS]/r R',
            'SELECT R FROM doc("g")[EVERY WITHIN 1.5 DAYS]/r R',
            'SELECT R FROM doc("g")[EVERY WITHIN 10 PARSECS]/r R',
            'SELECT R FROM doc("g")[EVERY WITHIN]/r R',
            # GROUP BY with nothing after it.
            'SELECT COUNT(R) FROM doc("g")[EVERY]/r R GROUP BY',
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_query(bad)


class TestParserErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "FROM doc(\"g\") R",
            "SELECT FROM doc(\"g\") R",
            "SELECT R",
            "SELECT R FROM doc(g) R",
            "SELECT R FROM doc(\"g\")[/r R",
            "SELECT R FROM doc(\"g\")/ R",
            "SELECT R FROM doc(\"g\") R trailing",
            "SELECT R FROM doc(\"g\") R WHERE",
            "SELECT R FROM doc(\"g\") R WHERE R =",
            "SELECT X FROM doc(\"g\") R",  # unbound variable
            "SELECT R FROM doc(\"g\") R, doc(\"h\") R",  # duplicate var
            "SELECT TIME( FROM doc(\"g\") R",
            "SELECT R FROM doc(\"g\") R LIMIT",
            "SELECT R FROM doc(\"g\") R LIMIT 1.5",
            "SELECT R FROM doc(\"g\") R LIMIT two",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_query(bad)
