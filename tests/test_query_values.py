"""Tests for runtime values: BoundElement, NodeValue, SnapshotCache,
Coalesce."""

import pytest

from repro.clock import Interval
from repro.errors import NoSuchVersionError
from repro.model.identifiers import EID, TEID
from repro.operators import Coalesce
from repro.operators.relational import INTERVAL_KEY
from repro.query.values import (
    BoundElement,
    NodeValue,
    SnapshotCache,
    TimestampValue,
    as_node,
    expand,
    truth,
)
from repro.storage import TemporalDocumentStore
from repro.workload import load_figure1
from repro.xmlcore import element

from tests.conftest import JAN_01, JAN_15, JAN_26, JAN_31


@pytest.fixture
def store():
    store = TemporalDocumentStore()
    load_figure1(store)
    return store


class TestTimestampValue:
    def test_is_an_int(self):
        ts = TimestampValue(JAN_26)
        assert ts == JAN_26
        assert ts + 1 == JAN_26 + 1

    def test_renders_as_date(self):
        assert str(TimestampValue(JAN_26)) == "26/01/2001"
        assert "26/01/2001" in repr(TimestampValue(JAN_26))


class TestBoundElement:
    def test_lazy_reconstruction(self, store):
        teid = TEID(store.doc_id("guide.com"), 1, JAN_26)
        bound = BoundElement(store, teid)
        store.repository.delta_reads = 0
        assert store.repository.delta_reads == 0  # nothing touched yet
        tree = bound.tree
        assert tree.tag == "guide"
        assert store.repository.delta_reads > 0

    def test_tree_cached_after_first_access(self, store):
        teid = TEID(store.doc_id("guide.com"), 1, JAN_26)
        bound = BoundElement(store, teid)
        first = bound.tree
        store.repository.delta_reads = 0
        assert bound.tree is first
        assert store.repository.delta_reads == 0

    def test_select_and_scalar(self, store):
        teid = TEID(store.doc_id("guide.com"), 1, JAN_01)
        bound = BoundElement(store, teid)
        names = bound.select("restaurant/name")
        assert [n.node.text for n in names] == ["Napoli"]
        assert bound.select("")[0].node is bound.tree

    def test_stale_teid(self, store):
        bound = BoundElement(store, TEID(store.doc_id("guide.com"), 999, JAN_26))
        assert bound.try_tree() is None
        with pytest.raises(NoSuchVersionError):
            bound.tree

    def test_eid_and_doc_id(self, store):
        doc = store.doc_id("guide.com")
        bound = BoundElement(store, TEID(doc, 2, JAN_01))
        assert bound.eid == EID(doc, 2)
        assert bound.doc_id == doc


class TestNodeValue:
    def test_eid(self):
        node = element("a")
        node.xid = 7
        assert NodeValue(3, node).eid == EID(3, 7)
        node.xid = None
        assert NodeValue(3, node).eid is None

    def test_scalar(self):
        assert NodeValue(1, element("p", "15")).scalar() == 15


class TestSnapshotCache:
    def test_same_version_shared(self, store):
        cache = SnapshotCache(store)
        doc = store.doc_id("guide.com")
        first = cache.document_at(doc, JAN_26)
        store.repository.delta_reads = 0
        second = cache.document_at(doc, JAN_26)
        assert first is second
        assert store.repository.delta_reads == 0

    def test_adjacent_version_costs_one_delta(self, store):
        cache = SnapshotCache(store)
        doc = store.doc_id("guide.com")
        cache.document_at(doc, JAN_15)  # version 2
        store.repository.delta_reads = 0
        v1 = cache.document_at(doc, JAN_01)  # rewind one step
        assert store.repository.delta_reads == 1
        assert len(v1.findall("restaurant")) == 1

    def test_roll_forward(self, store):
        cache = SnapshotCache(store)
        doc = store.doc_id("guide.com")
        cache.document_at(doc, JAN_01)  # version 1 (walks the chain)
        store.repository.delta_reads = 0
        v2 = cache.document_at(doc, JAN_15)  # forward one step
        assert store.repository.delta_reads == 1
        assert len(v2.findall("restaurant")) == 2

    def test_absent_version(self, store):
        cache = SnapshotCache(store)
        assert cache.document_at(store.doc_id("guide.com"), JAN_01 - 5) is None

    def test_subtree(self, store):
        cache = SnapshotCache(store)
        doc = store.doc_id("guide.com")
        subtree = cache.subtree(TEID(doc, 2, JAN_01))
        assert subtree.find("name").text == "Napoli"
        assert cache.subtree(TEID(doc, 999, JAN_01)) is None

    def test_cached_trees_correct_content(self, store):
        # Interleaved access: derived trees must match direct reconstruction.
        cache = SnapshotCache(store)
        doc = store.doc_id("guide.com")
        for ts in (JAN_31, JAN_01, JAN_15, JAN_26, JAN_01):
            via_cache = cache.document_at(doc, ts)
            direct = store.snapshot("guide.com", ts)
            assert via_cache.equals_deep(direct)


class TestValueHelpers:
    def test_as_node(self, store):
        node = element("a")
        assert as_node(NodeValue(1, node)) is node
        assert as_node("scalar") == "scalar"

    def test_expand(self):
        assert expand([1, 2]) == [1, 2]
        assert expand(5) == [5]

    def test_truth(self):
        assert truth(element("a"))
        assert not truth(None)
        assert not truth([])
        assert truth([1])
        assert not truth(0)
        assert truth(NodeValue(1, element("a")))


class TestCoalesce:
    def test_merges_equal_rows_with_adjacent_intervals(self):
        rows = [
            {"price": "15", INTERVAL_KEY: Interval(0, 10)},
            {"price": "15", INTERVAL_KEY: Interval(10, 20)},
            {"price": "18", INTERVAL_KEY: Interval(20, 30)},
        ]
        out = list(Coalesce(rows))
        assert len(out) == 2
        assert out[0][INTERVAL_KEY] == Interval(0, 20)
        assert out[1]["price"] == "18"

    def test_keeps_gaps_separate(self):
        rows = [
            {"v": 1, INTERVAL_KEY: Interval(0, 5)},
            {"v": 1, INTERVAL_KEY: Interval(10, 15)},
        ]
        out = list(Coalesce(rows))
        assert [r[INTERVAL_KEY] for r in out] == [
            Interval(0, 5),
            Interval(10, 15),
        ]

    def test_rows_without_intervals_pass_through(self):
        rows = [{"v": 1}, {"v": 2}]
        assert list(Coalesce(rows)) == rows

    def test_distinct_values_not_merged(self):
        rows = [
            {"v": 1, INTERVAL_KEY: Interval(0, 10)},
            {"v": 2, INTERVAL_KEY: Interval(5, 15)},
        ]
        assert len(list(Coalesce(rows))) == 2

    def test_price_history_use_case(self, store):
        # The motivating example: 15, 15, 18 price history -> two rows.
        from repro.clock import UNTIL_CHANGED

        rows = [
            {"price": "15", INTERVAL_KEY: Interval(JAN_01, JAN_15)},
            {"price": "15", INTERVAL_KEY: Interval(JAN_15, JAN_31)},
            {"price": "18", INTERVAL_KEY: Interval(JAN_31, UNTIL_CHANGED)},
        ]
        out = list(Coalesce(rows))
        assert len(out) == 2
        assert out[0][INTERVAL_KEY] == Interval(JAN_01, JAN_31)
