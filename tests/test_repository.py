"""Direct tests of the repository layer (below the store facade)."""

import pytest

from repro.diff.differ import diff
from repro.errors import NoSuchDocumentError, NoSuchVersionError
from repro.model.versioned import stamp_new_nodes
from repro.storage import DiskSimulator, Repository
from repro.xmlcore import parse, serialize


def _commit_chain(repository, sources, base_ts=1000):
    record = repository.create("d.xml")
    first = parse(sources[0])
    stamp_new_nodes(first, record.allocator, base_ts)
    repository.commit_initial(record, first, base_ts)
    for offset, source in enumerate(sources[1:], start=1):
        ts = base_ts + offset * 10
        new_tree = parse(source)
        script = diff(
            record.current_root, new_tree, record.allocator, commit_ts=ts
        )
        repository.commit_version(record, new_tree, script, ts)
    return record


SOURCES = [f"<a><b>{v}</b></a>" for v in range(6)]


class TestCommitAndRead:
    def test_chain_structure(self):
        repository = Repository()
        record = _commit_chain(repository, SOURCES)
        assert record.dindex.current_number == 6
        assert sorted(record.deltas) == [1, 2, 3, 4, 5]
        # Every non-current version has a delta extent; the current has none.
        for entry in record.dindex.entries[:-1]:
            assert entry.delta_extent is not None
        assert record.dindex.entries[-1].delta_extent is None

    def test_read_current_accounts_io(self):
        repository = Repository()
        record = _commit_chain(repository, SOURCES)
        before = repository.disk.snapshot()
        tree = repository.read_current(record)
        assert tree.find("b").text == "5"
        assert (repository.disk.snapshot() - before).reads == 1
        assert repository.current_reads == 1

    def test_read_delta_unknown_version(self):
        repository = Repository()
        record = _commit_chain(repository, SOURCES)
        with pytest.raises(NoSuchVersionError):
            repository.read_delta(record, 6)  # current has no delta
        with pytest.raises(NoSuchVersionError):
            repository.read_delta(record, 0)

    def test_record_lookup(self):
        repository = Repository()
        record = _commit_chain(repository, SOURCES)
        assert repository.record(record.doc_id) is record
        with pytest.raises(NoSuchDocumentError):
            repository.record(999)


class TestExplicitSnapshots:
    def test_materialize_snapshot(self):
        repository = Repository()
        record = _commit_chain(repository, SOURCES)
        entry = repository.materialize_snapshot(record, 3)
        assert entry.has_snapshot
        assert entry.snapshot_bytes > 0
        # Materializing again is a no-op.
        assert repository.materialize_snapshot(record, 3) is entry

    def test_snapshot_used_by_reconstruction(self):
        repository = Repository()
        record = _commit_chain(repository, SOURCES)
        repository.materialize_snapshot(record, 3)
        repository.delta_reads = 0
        repository.snapshot_reads = 0
        tree = repository.reconstruct(record, 2)
        assert tree.find("b").text == "1"
        assert repository.snapshot_reads == 1
        assert repository.delta_reads == 1  # only v2 <- v3

    def test_snapshot_read_returns_copy(self):
        repository = Repository()
        record = _commit_chain(repository, SOURCES)
        repository.materialize_snapshot(record, 3)
        tree = repository.read_snapshot(record, 3)
        tree.find("b").text = "XXX"
        assert repository.read_snapshot(record, 3).find("b").text == "2"

    def test_read_snapshot_missing(self):
        repository = Repository()
        record = _commit_chain(repository, SOURCES)
        with pytest.raises(NoSuchVersionError):
            repository.read_snapshot(record, 2)


class TestReconstructBounds:
    def test_out_of_range(self):
        repository = Repository()
        record = _commit_chain(repository, SOURCES)
        with pytest.raises(NoSuchVersionError):
            repository.reconstruct(record, 0)
        with pytest.raises(NoSuchVersionError):
            repository.reconstruct(record, 7)

    def test_reconstruct_at_timestamps(self):
        repository = Repository()
        record = _commit_chain(repository, SOURCES, base_ts=1000)
        assert repository.reconstruct_at(record, 999) is None
        assert repository.reconstruct_at(record, 1000).find("b").text == "0"
        assert repository.reconstruct_at(record, 1015).find("b").text == "1"

    def test_every_version_content(self):
        repository = Repository()
        record = _commit_chain(repository, SOURCES)
        for number, source in enumerate(SOURCES, start=1):
            assert serialize(repository.reconstruct(record, number)) == source


class TestSpaceAccounting:
    def test_categories_sum(self):
        repository = Repository()
        record = _commit_chain(repository, SOURCES)
        repository.materialize_snapshot(record, 4)
        stats = repository.storage_bytes()
        assert stats["snapshots"] > 0
        assert stats["total"] == (
            stats["current"] + stats["deltas"] + stats["snapshots"]
        )

    def test_delta_bytes_recorded(self):
        repository = Repository()
        record = _commit_chain(repository, SOURCES)
        for entry in record.dindex.entries[:-1]:
            assert entry.delta_bytes > 0


class TestDiskPlacementPolicy:
    def test_delta_arena_is_sequential(self):
        repository = Repository(DiskSimulator(clustered=True))
        record = _commit_chain(repository, SOURCES)
        extents = [
            entry.delta_extent for entry in record.dindex.entries[:-1]
        ]
        for first, second in zip(extents, extents[1:]):
            assert second.start_page == first.end_page

    def test_reconstruction_chain_few_seeks_when_clustered(self):
        repository = Repository(DiskSimulator(clustered=True))
        record = _commit_chain(repository, SOURCES)
        with repository.disk.cost_of() as cost:
            repository.reconstruct(record, 1)
        assert cost.result.seeks <= 2  # current + one delta sweep
