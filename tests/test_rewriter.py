"""Tests for the algebraic rewriter (time folding, window pushdown)."""

import pytest

from repro.clock import SECONDS_PER_DAY, parse_date
from repro.query.ast import BinOp, DateLiteral, EVERY
from repro.query.parser import parse_query
from repro.query.rewriter import TimeWindow, rewrite

JAN_10 = parse_date("10/01/2001")
JAN_20 = parse_date("20/01/2001")


def _rewrite(text, now=None):
    return rewrite(parse_query(text), now=now)


class TestTimeWindow:
    def test_intersect(self):
        a = TimeWindow(start=10, end=30)
        b = TimeWindow(start=20, end=40)
        assert a.intersect(b) == TimeWindow(20, 30)

    def test_empty_and_unbounded(self):
        assert TimeWindow(30, 10).is_empty
        assert TimeWindow().is_unbounded
        assert not TimeWindow(start=5).is_unbounded

    def test_pins_instant(self):
        assert TimeWindow(7, 8).pins_instant() == 7
        assert TimeWindow(7, 9).pins_instant() is None


class TestConstantFolding:
    def test_date_plus_interval(self):
        query, _ = _rewrite(
            'SELECT R FROM doc("g")/r R WHERE TIME(R) > 10/01/2001 + 3 DAYS'
        )
        right = query.where.right
        assert isinstance(right, DateLiteral)
        assert right.ts == JAN_10 + 3 * SECONDS_PER_DAY

    def test_now_minus_interval_with_clock(self):
        query, _ = _rewrite(
            'SELECT R FROM doc("g")/r R WHERE TIME(R) > NOW - 2 DAYS',
            now=JAN_20,
        )
        right = query.where.right
        assert isinstance(right, DateLiteral)
        assert right.ts == JAN_20 - 2 * SECONDS_PER_DAY

    def test_now_unfolded_without_clock(self):
        query, _ = _rewrite(
            'SELECT R FROM doc("g")/r R WHERE TIME(R) > NOW - 2 DAYS'
        )
        assert isinstance(query.where.right, BinOp)

    def test_folding_inside_functions(self):
        query, _ = _rewrite(
            'SELECT R FROM doc("g")/r R '
            "WHERE CREATE TIME(R) >= 10/01/2001 + 1 DAYS"
        )
        assert isinstance(query.where.right, DateLiteral)


class TestWindowExtraction:
    def test_lower_bound(self):
        _, windows = _rewrite(
            'SELECT R FROM doc("g")[EVERY]/r R WHERE TIME(R) >= 10/01/2001'
        )
        assert windows["R"] == TimeWindow(start=JAN_10)

    def test_strict_bounds(self):
        _, windows = _rewrite(
            'SELECT R FROM doc("g")[EVERY]/r R '
            "WHERE TIME(R) > 10/01/2001 AND TIME(R) < 20/01/2001"
        )
        assert windows["R"] == TimeWindow(JAN_10 + 1, JAN_20)

    def test_mirrored_comparison(self):
        _, windows = _rewrite(
            'SELECT R FROM doc("g")[EVERY]/r R WHERE 10/01/2001 <= TIME(R)'
        )
        assert windows["R"].start == JAN_10

    def test_conjuncts_intersect(self):
        _, windows = _rewrite(
            'SELECT R FROM doc("g")[EVERY]/r R '
            "WHERE TIME(R) >= 10/01/2001 AND TIME(R) <= 20/01/2001 "
            "AND TIME(R) >= 12/01/2001"
        )
        assert windows["R"] == TimeWindow(
            parse_date("12/01/2001"), JAN_20 + 1
        )

    def test_disjunction_not_pushed(self):
        _, windows = _rewrite(
            'SELECT R FROM doc("g")[EVERY]/r R '
            'WHERE TIME(R) >= 10/01/2001 OR R/name = "x"'
        )
        assert "R" not in windows

    def test_time_with_path_not_pushed(self):
        # TIME() over a path expression is not a version-timestamp test.
        _, windows = _rewrite(
            'SELECT R FROM doc("g")[EVERY]/r R WHERE TIME(R) != 10/01/2001'
        )
        assert "R" not in windows

    def test_multi_variable_windows(self):
        _, windows = _rewrite(
            'SELECT R1 FROM doc("g")[EVERY]/r R1, doc("g")[EVERY]/r R2 '
            "WHERE TIME(R1) >= 10/01/2001 AND TIME(R2) < 20/01/2001"
        )
        assert windows["R1"].start == JAN_10
        assert windows["R2"].end == JAN_20


class TestPointCollapse:
    def test_equality_becomes_snapshot(self):
        query, windows = _rewrite(
            'SELECT R FROM doc("g")[EVERY]/r R WHERE TIME(R) = 10/01/2001'
        )
        item = query.from_items[0]
        assert item.time_spec is not EVERY
        assert isinstance(item.time_spec, DateLiteral)
        assert item.time_spec.ts == JAN_10
        assert "R" not in windows  # consumed by the collapse

    def test_snapshot_bindings_untouched(self):
        query, windows = _rewrite(
            'SELECT R FROM doc("g")[10/01/2001]/r R '
            "WHERE TIME(R) >= 01/01/2001"
        )
        assert query.from_items[0].time_spec.ts == JAN_10

    def test_where_clause_is_kept(self):
        query, _ = _rewrite(
            'SELECT R FROM doc("g")[EVERY]/r R WHERE TIME(R) = 10/01/2001'
        )
        assert query.where is not None  # soundness: predicate re-checked


class TestEndToEndEquivalence:
    """Rewriting never changes query answers."""

    QUERIES = (
        'SELECT TIME(R), R/price FROM doc("guide.com")[EVERY]/restaurant R '
        "WHERE TIME(R) >= 15/01/2001",
        'SELECT R/name FROM doc("guide.com")[EVERY]/restaurant R '
        "WHERE TIME(R) = 15/01/2001",
        'SELECT R/name FROM doc("guide.com")[EVERY]/restaurant R '
        'WHERE R/name = "Napoli" AND TIME(R) < 31/01/2001',
        'SELECT R/name FROM doc("guide.com")[15/01/2001 + 1 WEEKS]'
        "/restaurant R",
    )

    @pytest.mark.parametrize("query", QUERIES)
    def test_same_results(self, figure1_db, query):
        figure1_db.engine.options.use_rewriter = True
        with_rewriter = sorted(str(figure1_db.query(query)).splitlines())
        figure1_db.engine.options.use_rewriter = False
        without = sorted(str(figure1_db.query(query)).splitlines())
        figure1_db.engine.options.use_rewriter = True
        assert with_rewriter == without

    def test_empty_window_short_circuits(self, figure1_db):
        result = figure1_db.query(
            'SELECT R FROM doc("guide.com")[EVERY]/restaurant R '
            "WHERE TIME(R) > 01/01/2002 AND TIME(R) < 01/01/2001"
        )
        assert len(result) == 0


class TestFoldingInSelect:
    def test_select_items_folded(self):
        query, _ = _rewrite(
            'SELECT TIME(R) FROM doc("g")/r R'
        )
        # A folded SELECT with arithmetic:
        query, _ = _rewrite(
            "SELECT 10/01/2001 + 3 DAYS FROM doc(\"g\")/r R"
        )
        item = query.select_items[0]
        assert isinstance(item, DateLiteral)
        assert item.ts == JAN_10 + 3 * 24 * 3600
