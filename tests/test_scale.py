"""Moderate-scale integration test: a whole collection, all invariants.

One store, 15 documents x 12 versions with all three indexes attached,
cross-checked end to end: reconstruction, FTI agreement, lifetime
agreement, query-plan equivalence, stratum equivalence, and persistence
round-trip.  This is the "does the whole system hold together" test.
"""

import pytest

from repro.clock import parse_date
from repro.index import (
    DeltaOperationIndex,
    LifetimeIndex,
    TemporalFullTextIndex,
)
from repro.model.identifiers import EID, TEID
from repro.operators import CreTime, DelTime
from repro.query import QueryEngine
from repro.storage import TemporalDocumentStore
from repro.storage.persistence import dump_store, load_store
from repro.stratum import StratumQueryProcessor, StratumStore
from repro.workload import TDocGenerator
from repro.xmlcore import serialize

N_DOCS = 15
VERSIONS = 12


@pytest.fixture(scope="module")
def world():
    generator = TDocGenerator(seed=1234, p_update=0.2, p_insert=0.06,
                              p_delete=0.06)
    store = TemporalDocumentStore(snapshot_interval=5)
    fti = store.subscribe(TemporalFullTextIndex())
    lifetime = store.subscribe(LifetimeIndex())
    operations = store.subscribe(DeltaOperationIndex())
    stratum = StratumStore()

    ts = parse_date("01/01/2001")
    names = [f"site{i}.xml" for i in range(1, N_DOCS + 1)]
    sequences = {
        name: generator.version_sequence(name, VERSIONS) for name in names
    }
    committed = {name: [] for name in names}
    for round_index in range(VERSIONS):
        # Store commits flow through one commit group per round (the
        # group-commit batch path); the stratum commits per-op — the
        # stratum-equivalence test below then doubles as a whole-system
        # check that batching changes nothing observable.
        with store.batch() as group:
            for name in names:
                tree = sequences[name][round_index]
                committed[name].append(serialize(tree))
                if round_index == 0:
                    group.put(name, tree.copy(), ts=ts)
                    stratum.put(name, tree.copy(), ts=ts)
                else:
                    group.update(name, tree.copy(), ts=ts)
                    stratum.update(name, tree.copy(), ts=ts)
                ts += 3600
    # Delete a few documents at the end.
    for name in names[:3]:
        store.delete(name, ts=ts)
        stratum.delete(name, ts=ts)
        ts += 3600
    return store, fti, lifetime, operations, stratum, committed


class TestReconstruction:
    def test_every_version_of_every_document(self, world):
        store, _fti, _life, _ops, _stratum, committed = world
        for name, sources in committed.items():
            for number, source in enumerate(sources, start=1):
                assert serialize(store.version(name, number)) == source


class TestIndexAgreement:
    def test_fti_against_snapshots_at_sampled_instants(self, world):
        store, fti, _life, ops, _stratum, _committed = world
        sample_words = ("w0001", "w0002", "w0010", "section", "item")
        for name in list(store.documents(include_deleted=True))[:5]:
            dindex = store.delta_index(name)
            for entry in dindex.entries[:: max(1, len(dindex.entries) // 3)]:
                snapshot = store.version(name, entry.number)
                doc_id = store.doc_id(name)
                present_words = set()
                for node in snapshot.iter():
                    if hasattr(node, "value"):
                        present_words.update(node.value.lower().split())
                    else:
                        present_words.add(node.tag)
                for word in sample_words:
                    hits = {
                        p.xid
                        for p in fti.lookup_t(word, entry.timestamp)
                        if p.doc_id == doc_id
                    }
                    if word not in present_words:
                        assert hits == set(), (name, word)
                    else:
                        assert hits, (name, word)

    def test_event_fold_consistent_on_sample(self, world):
        store, fti, _life, ops, _stratum, _committed = world
        for word in ("w0001", "item"):
            dindex = store.delta_index("site5.xml")
            ts = dindex.entries[-1].timestamp
            fold = set(ops.lookup_t(word, ts))
            intervals = {
                (p.doc_id, p.xid) for p in fti.lookup_t(word, ts)
            }
            assert fold == intervals

    def test_lifetime_agreement_on_sample(self, world):
        store, _fti, lifetime, _ops, _stratum, _committed = world
        name = "site7.xml"
        doc_id = store.doc_id(name)
        dindex = store.delta_index(name)
        entry = dindex.entries[VERSIONS // 2]
        snapshot = store.version(name, entry.number)
        for node in list(snapshot.iter())[:30]:
            teid = TEID(doc_id, node.xid, entry.timestamp)
            assert (
                CreTime(store, teid, "traverse").value()
                == lifetime.create_time(EID(doc_id, node.xid))
            )
            assert (
                DelTime(store, teid, "traverse").value()
                == lifetime.delete_time(EID(doc_id, node.xid))
            )


class TestQueryEquivalenceAtScale:
    QUERIES = (
        'SELECT COUNT(I) FROM doc("*")//item I',
        'SELECT TIME(D) FROM doc("site4.xml")[EVERY] D',
        'SELECT I FROM doc("site8.xml")[EVERY]//item I '
        "WHERE TIME(I) >= 05/01/2001",
    )

    @pytest.mark.parametrize("query", QUERIES)
    def test_plans_agree(self, world, query):
        store, fti, _life, _ops, _stratum, _committed = world
        engine = QueryEngine(store, fti=fti)
        engine.options.use_pattern_index = True
        indexed = sorted(str(engine.execute(query)).splitlines())
        engine.options.use_pattern_index = False
        navigated = sorted(str(engine.execute(query)).splitlines())
        assert indexed == navigated

    def test_stratum_agrees(self, world):
        store, fti, _life, _ops, stratum, _committed = world
        engine = QueryEngine(store, fti=fti)
        processor = StratumQueryProcessor(stratum)
        for query in (
            'SELECT COUNT(I) FROM doc("*")//item I',
            'SELECT TIME(D) FROM doc("site4.xml")[EVERY] D',
        ):
            native = sorted(str(engine.execute(query)).splitlines())
            translated = sorted(str(processor.execute(query)).splitlines())
            assert native == translated, query


class TestPersistenceAtScale:
    def test_archive_roundtrip(self, world):
        store, _fti, _life, _ops, _stratum, committed = world
        loaded = load_store(dump_store(store))
        for name, sources in list(committed.items())[:4]:
            for number, source in enumerate(sources, start=1):
                assert serialize(loaded.version(name, number)) == source
        assert set(loaded.documents(include_deleted=True)) == set(
            store.documents(include_deleted=True)
        )
