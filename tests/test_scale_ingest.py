"""Group-commit batched ingestion: invariants and the scale suite.

The unmarked tests pin the batch API's semantics — byte-identical
stores vs per-commit ingestion of the same ops, index agreement,
staging-time validation, serving isolation across a group boundary.
The ``scale``-marked tests run the warehouse-scale ingestion + keyword
workload end to end (reduced sizes under ``REPRO_SCALE_SMOKE=1``, the
CI smoke configuration).
"""

import os

import pytest

from repro import TemporalXMLDatabase
from repro.clock import parse_date
from repro.errors import (
    DocumentDeletedError,
    NoSuchDocumentError,
    StorageError,
)
from repro.index import LifetimeIndex, TemporalFullTextIndex
from repro.index.relevance import TemporalKeywordScorer
from repro.model.identifiers import EID
from repro.serving import SessionManager
from repro.storage import TemporalDocumentStore
from repro.storage.persistence import archive_bytes, build_archive
from repro.storage.snapshots import AdaptiveSnapshotPolicy
from repro.workload import (
    BatchingWriter,
    KeywordWorkload,
    TDocGenerator,
    ingest_crawl,
    ingest_synthetic,
)

START = parse_date("01/01/2001")


def _ops(n_docs=6, versions=8, seed=42):
    """A deterministic (kind, name, tree, ts) op stream with deletions."""
    generator = TDocGenerator(seed=seed, p_update=0.25, p_insert=0.08,
                              p_delete=0.08)
    names = [f"doc{i}.xml" for i in range(1, n_docs + 1)]
    ops = []
    ts = START
    for round_index in range(versions):
        for name in names:
            if round_index == 0:
                ops.append(("put", name, generator.document(name), ts))
            else:
                ops.append(("update", name, generator.evolve(name), ts))
            ts += 3600
    for name in names[:2]:
        ops.append(("delete", name, None, ts))
        ts += 3600
    return ops


def _apply_per_commit(store, ops):
    for kind, name, tree, ts in ops:
        if kind == "delete":
            store.delete(name, ts=ts)
        else:
            getattr(store, kind)(name, tree.copy(), ts=ts)


def _apply_batched(store, ops, batch_size):
    with BatchingWriter(store, batch_size=batch_size) as writer:
        for kind, name, tree, ts in ops:
            if kind == "delete":
                writer.delete(name, ts=ts)
            else:
                getattr(writer, kind)(name, tree.copy(), ts=ts)


def _postings_view(fti):
    return {
        word: sorted(
            (p.doc_id, p.xid, p.start, p.end) for p in fti.lookup_h(word)
        )
        for word in fti.words()
    }


class TestBatchEquivalence:
    @pytest.mark.parametrize("policy", ["interval", "adaptive"])
    @pytest.mark.parametrize("batch_size", [1, 5, 17, 1000])
    def test_batched_store_is_byte_identical(self, policy, batch_size):
        kwargs = (
            {"snapshot_interval": 3} if policy == "interval"
            else {"snapshot_policy": AdaptiveSnapshotPolicy(2000)}
        )
        ops = _ops()
        reference = TemporalDocumentStore(**kwargs)
        _apply_per_commit(reference, ops)
        batched = TemporalDocumentStore(**kwargs)
        _apply_batched(batched, ops, batch_size)
        assert archive_bytes(build_archive(batched)) == archive_bytes(
            build_archive(reference)
        )

    def test_indexes_agree_with_per_commit(self):
        ops = _ops()
        reference = TemporalDocumentStore()
        ref_fti = reference.subscribe(TemporalFullTextIndex())
        ref_life = reference.subscribe(LifetimeIndex())
        _apply_per_commit(reference, ops)

        batched = TemporalDocumentStore()
        fti = batched.subscribe(TemporalFullTextIndex())
        life = batched.subscribe(LifetimeIndex())
        _apply_batched(batched, ops, batch_size=7)

        assert _postings_view(fti) == _postings_view(ref_fti)
        for record in reference.repository.records():
            for number in range(1, record.dindex.current_number + 1):
                tree = reference.version(record.doc_id, number)
                for node in tree.iter_elements():
                    eid = EID(record.doc_id, node.xid)
                    assert life.create_time(eid) == ref_life.create_time(eid)
                    assert life.delete_time(eid) == ref_life.delete_time(eid)

    def test_keyword_rankings_agree_with_per_commit(self):
        ops = _ops()
        reference = TemporalDocumentStore()
        ref_fti = reference.subscribe(TemporalFullTextIndex())
        _apply_per_commit(reference, ops)
        batched = TemporalDocumentStore()
        fti = batched.subscribe(TemporalFullTextIndex())
        _apply_batched(batched, ops, batch_size=9)

        ref_scorer = TemporalKeywordScorer(ref_fti)
        scorer = TemporalKeywordScorer(fti)
        end = reference.clock.now()
        for query in ("w0001", "w0002 section", "item w0010"):
            assert scorer.search_t(query, end) == ref_scorer.search_t(
                query, end
            )
            assert scorer.search_window(
                query, START, end
            ) == ref_scorer.search_window(query, START, end)


class TestBatchSemantics:
    def test_abort_leaves_store_untouched(self):
        store = TemporalDocumentStore()
        store.put("a.xml", "<doc><x>one</x></doc>")
        before = archive_bytes(build_archive(store))
        try:
            with store.batch() as batch:
                batch.update("a.xml", "<doc><x>two</x></doc>")
                batch.put("b.xml", "<doc/>")
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert archive_bytes(build_archive(store)) == before
        assert store.documents() == ["a.xml"]

    def test_staging_validation(self):
        store = TemporalDocumentStore()
        store.put("a.xml", "<doc/>")
        batch = store.batch()
        with pytest.raises(StorageError):
            batch.put("a.xml", "<doc/>")  # already live
        with pytest.raises(NoSuchDocumentError):
            batch.update("nope.xml", "<doc/>")
        with pytest.raises(NoSuchDocumentError):
            batch.delete("nope.xml")
        # Liveness tracks staged ops: delete then re-put then update is
        # legal inside one group; update after staged delete is not.
        batch.delete("a.xml")
        with pytest.raises(DocumentDeletedError):
            batch.update("a.xml", "<doc/>")
        batch.put("a.xml", "<doc><y>re</y></doc>")
        batch.update("a.xml", "<doc><y>re2</y></doc>")
        results = batch.commit()
        assert len(results) == 3  # delete, re-put, update (rejected ops
        # were never staged)
        assert store.documents() == ["a.xml"]
        # Re-introduced name gets a fresh identity (new doc_id).
        assert store.doc_id("a.xml") == 2

    def test_closed_batch_refuses_further_ops(self):
        store = TemporalDocumentStore()
        batch = store.batch()
        batch.put("a.xml", "<doc/>")
        batch.commit()
        with pytest.raises(StorageError):
            batch.put("b.xml", "<doc/>")
        with pytest.raises(StorageError):
            batch.commit()

    def test_timestamps_must_not_go_backwards(self):
        store = TemporalDocumentStore()
        batch = store.batch()
        batch.put("a.xml", "<doc/>", ts=START + 100)
        with pytest.raises(StorageError):
            batch.put("b.xml", "<doc/>", ts=START + 50)

    def test_batching_writer_flushes_partial_groups(self):
        store = TemporalDocumentStore()
        with BatchingWriter(store, batch_size=4) as writer:
            for i in range(10):
                writer.put(f"d{i}.xml", "<doc/>")
        assert writer.groups == 3  # 4 + 4 + 2
        assert len(store.documents()) == 10


class TestServingIsolation:
    def test_pinned_reader_never_sees_half_a_group(self):
        db = TemporalXMLDatabase()
        manager = SessionManager(db)
        manager.put("a.xml", "<doc><x>alpha</x></doc>")
        reader = manager.session()
        seq_before = manager.published.seq

        with manager.batch() as batch:
            batch.update("a.xml", "<doc><x>beta</x></doc>")
            batch.put("b.xml", "<doc><y>gamma</y></doc>")
            batch.update("b.xml", "<doc><y>gamma two</y></doc>")
            # Mid-group: nothing is published, the pinned reader still
            # resolves the pre-group world.
            assert manager.published.seq == seq_before
            rows = str(reader.query('SELECT X FROM doc("a.xml")//x X'))
            assert "alpha" in rows and "beta" not in rows

        # The group published exactly one epoch covering all 3 commits.
        assert manager.published.seq == seq_before + 1
        assert manager.commits == 4  # 1 put + 3 grouped

        # The old pin still sees the pre-group state: b.xml did not exist
        # in the pinned world, exactly as in a quiesced pre-group store.
        with pytest.raises(NoSuchDocumentError):
            reader.query('SELECT D FROM doc("b.xml")[NOW] D')
        # ...and one refresh lands on the whole group at once.
        reader.refresh()
        assert len(list(
            reader.query('SELECT D FROM doc("b.xml")[NOW] D')
        )) == 1
        assert "beta" in str(
            reader.query('SELECT X FROM doc("a.xml")//x X')
        )

    def test_aborted_group_publishes_nothing(self):
        db = TemporalXMLDatabase()
        manager = SessionManager(db)
        manager.put("a.xml", "<doc/>")
        seq = manager.published.seq
        try:
            with manager.batch() as batch:
                batch.put("b.xml", "<doc/>")
                raise RuntimeError("abort the group")
        except RuntimeError:
            pass
        assert manager.published.seq == seq
        assert db.documents() == ["a.xml"]


# -- the scale suite (excluded from tier-1 via the marker) --------------------

SMOKE = os.environ.get("REPRO_SCALE_SMOKE", "") not in ("", "0")

# Reduced sizes keep the smoke job under a minute; the full sizes are
# what BENCH_scale runs (10^6 elements / 10^4 versions live there).
SCALE_DOCS = 12 if SMOKE else 40
SCALE_VERSIONS = 10 if SMOKE else 50
SCALE_QUERIES = 40 if SMOKE else 200


@pytest.mark.scale
class TestScaleIngestion:
    @pytest.fixture(scope="class")
    def ingested(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("scale-db")
        db = TemporalXMLDatabase.open(
            directory, durability="fsync", snapshot_interval=10
        )
        generator = TDocGenerator(seed=99, fanout=(3, 5), depth=3)
        report = ingest_synthetic(
            db.store,
            n_docs=SCALE_DOCS,
            versions_per_doc=SCALE_VERSIONS,
            batch_size=32,
            generator=generator,
        )
        yield db, generator, report, directory
        db.close()

    def test_ingest_shape(self, ingested):
        _db, _generator, report, _directory = ingested
        assert report.versions == SCALE_DOCS * SCALE_VERSIONS
        assert report.groups >= report.versions // 32
        assert report.elements > report.versions  # multi-element trees

    def test_fsyncs_amortized(self, ingested):
        db, _generator, report, _directory = ingested
        stats = db.journal.stats
        assert stats.groups_written == report.groups
        # One fsync per group plus the header — far fewer than commits.
        assert stats.fsyncs <= report.groups + 2
        assert stats.fsyncs * 3 <= report.versions

    def test_sampled_reconstruction_and_fti_agreement(self, ingested):
        db, _generator, _report, _directory = ingested
        store = db.store
        names = store.documents()[:: max(1, len(store.documents()) // 5)]
        for name in names:
            dindex = store.delta_index(name)
            step = max(1, len(dindex.entries) // 4)
            for entry in dindex.entries[::step]:
                tree = store.version(name, entry.number)
                doc_id = store.doc_id(name)
                words = set()
                for node in tree.iter():
                    if hasattr(node, "value"):
                        words.update(node.value.lower().split())
                for word in list(sorted(words))[:5]:
                    hits = {
                        p.xid
                        for p in db.fti.lookup_t(word, entry.timestamp)
                        if p.doc_id == doc_id
                    }
                    assert hits, (name, entry.number, word)

    def test_keyword_workload_runs_and_ranks(self, ingested):
        db, generator, _report, _directory = ingested
        workload = KeywordWorkload(
            db.fti,
            generator.vocab.words,
            START,
            db.now(),
            seed=5,
            n_docs=SCALE_DOCS,
        )
        queries = workload.make_queries(SCALE_QUERIES)
        report, tracer = workload.run(queries)
        assert report.queries == SCALE_QUERIES
        assert len(tracer.roots) == SCALE_QUERIES
        assert report.results > 0
        # Zipf head terms must rank; scores are positive and sorted.
        scorer = TemporalKeywordScorer(db.fti)
        ranked = workload.scorer.search_t("w0001", db.now(), limit=5)
        assert ranked == scorer.search_t("w0001", db.now(), limit=5)
        assert all(
            ranked[i].score >= ranked[i + 1].score
            for i in range(len(ranked) - 1)
        )

    def test_reopen_recovers_everything(self, ingested):
        db, _generator, report, directory = ingested
        db.journal.sync()
        reference = archive_bytes(build_archive(db.store))
        reopened = TemporalXMLDatabase.open(directory, durability="fsync")
        try:
            assert archive_bytes(build_archive(reopened.store)) == reference
        finally:
            reopened.close()


@pytest.mark.scale
def test_crawl_ingestion_through_groups(tmp_path):
    db = TemporalXMLDatabase.open(tmp_path / "crawl", durability="fsync")
    report, crawl_report = ingest_crawl(
        db.store,
        n_urls=6 if SMOKE else 15,
        states_per_url=5 if SMOKE else 12,
        batch_size=8,
    )
    try:
        assert report.versions == (
            crawl_report.stored_versions + crawl_report.deletions_observed
        )
        assert report.versions > 0
        assert report.groups >= 1
        assert 0 < crawl_report.capture_ratio() <= 1.0
        assert db.journal.stats.groups_written == report.groups
    finally:
        db.close()
