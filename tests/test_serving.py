"""The concurrent serving layer: snapshot isolation, replicas, the server.

The central test here is randomized reader/writer interleaving: reader
threads hammer pinned sessions while a writer commits a scripted history,
and afterwards every observed ``(published seq, query)`` pair is re-run
against a quiesced store built by applying exactly that prefix of the
script serially.  Snapshot isolation holds iff the concurrent results are
byte-identical to the serial ones — for every query shape the engine has:
snapshot scans, EVERY scans, aggregates, globs, ``CURRENT``/``NEXT``
navigation, ``DELETE TIME``, and document-name resolution itself.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro import TemporalXMLDatabase
from repro.clock import parse_date
from repro.errors import ServingError, StorageError, TemporalXMLError
from repro.serving import (
    PublishedState,
    Replica,
    ServingClient,
    ServingServer,
    SessionManager,
)
from repro.storage.cache import VersionCache
from repro.clock import LogicalClock
from repro.sync import RWLock

JAN_01 = parse_date("01/01/2001")

NAMES = ["guide.com", "news.com"]
WORDS = ["napoli", "roma", "bergen", "oslo"]

QUERIES = [
    'SELECT R FROM doc("guide.com")/restaurant R',
    'SELECT TIME(R), R/price FROM doc("guide.com")[EVERY]/restaurant R',
    'SELECT R/name FROM doc("*")[EVERY]/restaurant R WHERE R/name="napoli"',
    'SELECT SUM(R) FROM doc("news.com")/restaurant R',
    'SELECT TIME(R), DELETE TIME(R) FROM doc("news.com")[EVERY]/restaurant R',
    'SELECT CURRENT(R)/price FROM doc("guide.com")[EVERY]/restaurant R',
    'SELECT NEXT(R)/price FROM doc("guide.com")[EVERY]/restaurant R',
    'SELECT R FROM doc("guide.com") R',
]


def _doc_xml(rng):
    items = "".join(
        f"<restaurant><name>{rng.choice(WORDS)}</name>"
        f"<price>{rng.randrange(5, 40)}</price></restaurant>"
        for _ in range(rng.randrange(1, 4))
    )
    return f"<guide>{items}</guide>"


def _make_plan(seed, count):
    """A scripted commit history with strictly increasing timestamps,
    including deletions and name reuse (fresh identity after delete)."""
    rng = random.Random(seed)
    ts = JAN_01
    alive = set()
    plan = []
    for _ in range(count):
        ts += rng.randrange(3600, 200000)
        name = rng.choice(NAMES)
        if name not in alive:
            plan.append(("put", name, _doc_xml(rng), ts))
            alive.add(name)
        elif rng.random() < 0.15:
            plan.append(("delete", name, None, ts))
            alive.discard(name)
        else:
            plan.append(("update", name, _doc_xml(rng), ts))
    return plan


def _apply(target, op):
    kind, name, xml, ts = op
    if kind == "put":
        target.put(name, xml, ts=ts)
    elif kind == "update":
        target.update(name, xml, ts=ts)
    else:
        target.delete(name, ts=ts)


def _canonical(run):
    """Byte-comparable outcome of a query: its XML envelope, or the error
    class when it raises (a pinned reader must raise exactly where the
    quiesced store would)."""
    try:
        return run().to_xml_string()
    except TemporalXMLError as exc:
        return f"<error>{type(exc).__name__}</error>"


# -- sessions and the published pointer ---------------------------------------


def test_session_pins_to_published_state():
    db = TemporalXMLDatabase()
    manager = SessionManager(db)
    assert manager.published == PublishedState(0, db.now())

    manager.put("guide.com", "<guide><restaurant><name>napoli</name>"
                "<price>20</price></restaurant></guide>", ts=JAN_01)
    session = manager.session()
    assert session.pinned.seq == 1

    before = _canonical(lambda: session.query(QUERIES[0]))
    manager.update("guide.com", "<guide><restaurant><name>napoli</name>"
                   "<price>25</price></restaurant></guide>",
                   ts=parse_date("15/01/2001"))
    # The old session still reads its snapshot; a refresh re-pins it.
    assert _canonical(lambda: session.query(QUERIES[0])) == before
    session.refresh()
    assert session.pinned.seq == 2
    assert _canonical(lambda: session.query(QUERIES[0])) != before


def test_session_hides_documents_created_after_pin():
    db = TemporalXMLDatabase()
    manager = SessionManager(db)
    manager.put("guide.com", "<guide><a>x</a></guide>", ts=JAN_01)
    session = manager.session()
    manager.put("news.com", "<news><a>y</a></news>",
                ts=parse_date("15/01/2001"))
    # Pinned before news.com existed: the name must not even resolve.
    assert _canonical(
        lambda: session.query('SELECT R FROM doc("news.com") R')
    ) == "<error>NoSuchDocumentError</error>"
    result = session.query('SELECT R FROM doc("*")[EVERY] R')
    assert "news" not in result.to_xml_string()
    session.refresh()
    assert len(session.query('SELECT R FROM doc("news.com") R')) == 1


def test_per_query_stats_are_not_shared_between_sessions():
    db = TemporalXMLDatabase()
    manager = SessionManager(db)
    manager.put("guide.com", "<guide><restaurant><name>napoli</name>"
                "<price>20</price></restaurant></guide>", ts=JAN_01)
    a = manager.session()
    b = manager.session()
    result_a = a.query(QUERIES[0])
    assert result_a.stats is not None  # per-execute delta, satellite #1
    result_b = b.query(QUERIES[1])
    # a's engine-local counters are untouched by b's query.
    assert a.engine.last_query_stats == result_a.stats
    assert b.engine.last_query_stats == result_b.stats
    stats = a.stats()
    assert stats["queries"] == 1 and stats["pinned_seq"] == 1


def test_writes_are_serialized_and_publish_monotonically():
    db = TemporalXMLDatabase()
    manager = SessionManager(db)
    seen = []

    def writer(idx):
        for i in range(5):
            manager.put(f"doc{idx}-{i}.xml", "<d><v>1</v></d>")
            seen.append(manager.published.seq)

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert manager.published.seq == 15
    assert manager.commits == 15
    assert len(db.documents()) == 15


# -- the randomized interleaving proof ----------------------------------------


@pytest.mark.timeout(120)
def test_randomized_readers_match_serial_execution():
    plan = _make_plan(seed=7, count=24)
    db = TemporalXMLDatabase()
    manager = SessionManager(db)
    stop = threading.Event()
    observed = set()
    observed_lock = threading.Lock()
    reader_errors = []

    def reader(idx):
        rng = random.Random(100 + idx)
        try:
            while not stop.is_set():
                session = manager.session()
                for _ in range(rng.randrange(1, 3)):
                    query = rng.choice(QUERIES)
                    text = _canonical(lambda: session.query(query))
                    with observed_lock:
                        observed.add((session.pinned.seq, query, text))
        except Exception as exc:  # noqa: BLE001 — recorded for the assert
            reader_errors.append(exc)

    threads = [
        threading.Thread(target=reader, args=(i,)) for i in range(3)
    ]
    for t in threads:
        t.start()
    try:
        for op in plan:
            _apply(manager, op)
            time.sleep(0.002)
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=30)
    assert not reader_errors
    assert observed

    # Published seq k <=> exactly plan[:k] applied.  Rebuild each observed
    # prefix serially on a quiesced store and demand byte-identical output.
    baselines = {}
    for seq in sorted({seq for seq, _, _ in observed}):
        baseline = TemporalXMLDatabase()
        for op in plan[:seq]:
            _apply(baseline, op)
        baselines[seq] = baseline
    for seq, query, text in sorted(observed):
        expected = _canonical(lambda: baselines[seq].query(query))
        assert text == expected, (
            f"snapshot isolation violated at seq {seq} for {query!r}"
        )


# -- journal-shipping replicas ------------------------------------------------


@pytest.mark.timeout(60)
def test_replica_catches_up_with_leader(tmp_path):
    leader_dir = tmp_path / "leader"
    leader = TemporalXMLDatabase.open(leader_dir, durability="journal")
    plan = _make_plan(seed=11, count=10)
    for op in plan[:6]:
        _apply(leader, op)

    replica = Replica(leader_dir)
    _assert_same_database(leader, replica)

    for op in plan[6:]:
        _apply(leader, op)
    assert replica.catch_up() == 4
    _assert_same_database(leader, replica)

    # Catch-up is idempotent: nothing new, nothing re-applied.
    assert replica.catch_up() == 0

    # Survives a journal roll (checkpoint) and keeps tailing.
    leader.checkpoint()
    _apply(leader, ("update", plan[0][1], "<guide><a>tail</a></guide>",
                    plan[-1][3] + 5000))
    assert replica.catch_up() == 1
    _assert_same_database(leader, replica)
    leader.close()

    with pytest.raises(StorageError):
        replica.sessions.put("x.xml", "<a>no</a>")


@pytest.mark.timeout(60)
def test_replica_follow_tails_on_a_timer(tmp_path):
    leader_dir = tmp_path / "leader"
    leader = TemporalXMLDatabase.open(leader_dir, durability="journal")
    plan = _make_plan(seed=23, count=8)
    for op in plan[:4]:
        _apply(leader, op)

    replica = Replica(leader_dir)
    stop = threading.Event()
    applied = []
    follower = threading.Thread(
        target=lambda: applied.append(replica.follow(0.01, stop=stop))
    )
    follower.start()
    try:
        for op in plan[4:]:
            _apply(leader, op)
        deadline = time.monotonic() + 30
        while replica.stats()["records_applied"] < len(plan) - 4:
            assert time.monotonic() < deadline, "follow never caught up"
            time.sleep(0.01)
    finally:
        stop.set()
        follower.join()
    # The follower applied everything committed after the seed read.
    assert applied == [len(plan) - 4]
    _assert_same_database(leader, replica)
    leader.close()


def test_replica_follow_duration_returns(tmp_path):
    leader_dir = tmp_path / "leader"
    leader = TemporalXMLDatabase.open(leader_dir, durability="journal")
    plan = _make_plan(seed=29, count=4)
    for op in plan[:2]:
        _apply(leader, op)
    replica = Replica(leader_dir)
    for op in plan[2:]:
        _apply(leader, op)
    # A bounded follow picks up the tail and returns on its own.
    assert replica.follow(0.01, duration=0.1) == 2
    _assert_same_database(leader, replica)
    leader.close()


def _assert_same_database(leader, replica):
    for query in QUERIES:
        assert _canonical(lambda: replica.query(query)) == _canonical(
            lambda: leader.query(query)
        )
    now = leader.now()
    for word in WORDS:
        assert _postings(replica.fti.lookup_t(word, now)) == _postings(
            leader.fti.lookup_t(word, now)
        )
    assert len(replica.lifetime) == len(leader.lifetime)


def _postings(postings):
    return sorted((p.doc_id, p.xid, p.start, p.end) for p in postings)


# -- the socket front end -----------------------------------------------------


@pytest.mark.timeout(60)
def test_server_serves_concurrent_clients():
    db = TemporalXMLDatabase()
    manager = SessionManager(db)
    manager.put("guide.com", "<guide><restaurant><name>napoli</name>"
                "<price>20</price></restaurant></guide>", ts=JAN_01)
    failures = []
    with ServingServer(manager) as server:
        host, port = server.address

        def client_reads(idx):
            try:
                with ServingClient(host, port) as client:
                    assert client.ping()["pong"]
                    for _ in range(10):
                        response = client.query(QUERIES[0], stats=True)
                        assert response["rows"], response
                        assert response["stats"] is not None
            except Exception as exc:  # noqa: BLE001
                failures.append(exc)

        threads = [
            threading.Thread(target=client_reads, args=(i,))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        with ServingClient(host, port) as writer:
            writer.update("guide.com", "<guide><restaurant><name>napoli"
                          "</name><price>30</price></restaurant></guide>",
                          ts="15/01/2001")
        for t in threads:
            t.join(timeout=30)
        assert not failures

        with ServingClient(host, port) as client:
            # Snapshot stability across requests: refresh=False keeps the pin.
            pinned = client.pinned()
            again = client.query(QUERIES[0], refresh=False)["pinned"]
            assert again == pinned
            report = client.trace(QUERIES[1])["report"]
            assert report["wall_ms"] >= 0 and report["row_count"] >= 1
            with pytest.raises(ServingError):
                client.query('SELECT R FROM doc("missing") R')
            stats = client.stats()
            assert stats["server"]["connections"] >= 6
            assert stats["server"]["manager"]["commits"] == 2


# -- satellite: shared hot-path structures are thread-safe --------------------


@pytest.mark.timeout(60)
def test_version_cache_and_clock_survive_thread_hammering():
    cache = VersionCache(size=8)
    clock = LogicalClock()
    ticks = []
    ticks_lock = threading.Lock()
    failures = []

    def hammer(idx):
        rng = random.Random(idx)
        from repro.xmlcore.node import Element

        try:
            local = []
            for _ in range(300):
                doc_id = rng.randrange(3)
                version = rng.randrange(1, 7)
                cache.store(doc_id, version, Element("d"))
                cache.lookup(doc_id, version, version + 2)
                if rng.random() < 0.1:
                    cache.invalidate(doc_id)
                local.append(clock.advance())
            with ticks_lock:
                ticks.extend(local)
        except Exception as exc:  # noqa: BLE001
            failures.append(exc)

    threads = [threading.Thread(target=hammer, args=(i,)) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not failures
    # Atomic ticks: every advance() returned a distinct timestamp.
    assert len(set(ticks)) == len(ticks) == 6 * 300
    assert len(cache) <= 8
    stats = cache.stats.as_dict()
    assert stats["hits"] + stats["misses"] > 0


def test_rwlock_is_write_preferring():
    lock = RWLock()
    order = []

    with lock.read_lock():
        order.append("read")
    with lock.write_lock():
        order.append("write")
    assert order == ["read", "write"]

    # A writer excludes readers: the reader thread only proceeds after
    # the writer releases.
    entered = threading.Event()
    release = threading.Event()
    progressed = []

    def writer():
        with lock.write_lock():
            entered.set()
            release.wait(timeout=10)

    def reader():
        entered.wait(timeout=10)
        with lock.read_lock():
            progressed.append(True)

    w = threading.Thread(target=writer)
    r = threading.Thread(target=reader)
    w.start()
    r.start()
    entered.wait(timeout=10)
    assert not progressed  # reader blocked behind the active writer
    release.set()
    w.join(timeout=10)
    r.join(timeout=10)
    assert progressed == [True]
