"""Snapshot placement policies (interval and adaptive delta-bytes)."""

import pytest

from repro.storage import TemporalDocumentStore
from repro.storage.snapshots import (
    AdaptiveSnapshotPolicy,
    IntervalSnapshotPolicy,
    SnapshotPolicy,
)
from repro.workload import TDocGenerator

VERSIONS = 12


def _populate(store, seed=3, versions=VERSIONS):
    generator = TDocGenerator(seed=seed)
    trees = generator.version_sequence("d.xml", versions)
    store.put("d.xml", trees[0])
    for tree in trees[1:]:
        store.update("d.xml", tree)
    return store


class TestPolicyObjects:
    def test_base_policy_never_fires(self):
        store = _populate(
            TemporalDocumentStore(snapshot_policy=SnapshotPolicy())
        )
        assert store.record("d.xml").dindex.snapshot_numbers() == []

    def test_interval_policy_matches_interval_knob(self):
        knob = _populate(TemporalDocumentStore(snapshot_interval=4))
        policy = _populate(
            TemporalDocumentStore(
                snapshot_policy=IntervalSnapshotPolicy(4)
            )
        )
        assert (
            knob.record("d.xml").dindex.snapshot_numbers()
            == policy.record("d.xml").dindex.snapshot_numbers()
            == [4, 8, 12]
        )

    def test_interval_policy_validates(self):
        with pytest.raises(ValueError):
            IntervalSnapshotPolicy(0)
        with pytest.raises(ValueError):
            AdaptiveSnapshotPolicy(0)

    def test_describe(self):
        assert SnapshotPolicy().describe() == "none"
        assert IntervalSnapshotPolicy(4).describe() == "interval(4)"
        assert AdaptiveSnapshotPolicy(100).describe() == "adaptive(100B)"


class TestAdaptivePolicy:
    def test_huge_threshold_never_snapshots(self):
        store = _populate(
            TemporalDocumentStore(
                snapshot_policy=AdaptiveSnapshotPolicy(10**9)
            )
        )
        assert store.record("d.xml").dindex.snapshot_numbers() == []

    def test_small_threshold_bounds_accumulated_delta_bytes(self):
        threshold = 200
        store = _populate(
            TemporalDocumentStore(
                snapshot_policy=AdaptiveSnapshotPolicy(threshold)
            )
        )
        dindex = store.record("d.xml").dindex
        snapshots = dindex.snapshot_numbers()
        assert snapshots, "threshold small enough that it must fire"
        # Between consecutive anchors the accumulated chain stays under the
        # threshold until the final (tripping) version.
        anchors = [1] + snapshots
        for lo, hi in zip(anchors, anchors[1:]):
            if hi - lo > 1:
                assert dindex.delta_bytes_between(lo, hi - 1) <= threshold

    def test_tighter_threshold_never_fewer_snapshots(self):
        loose = _populate(
            TemporalDocumentStore(
                snapshot_policy=AdaptiveSnapshotPolicy(800)
            )
        )
        tight = _populate(
            TemporalDocumentStore(
                snapshot_policy=AdaptiveSnapshotPolicy(200)
            )
        )
        assert len(
            tight.record("d.xml").dindex.snapshot_numbers()
        ) >= len(loose.record("d.xml").dindex.snapshot_numbers())

    def test_interval_knob_takes_precedence_when_both_set(self):
        store = _populate(
            TemporalDocumentStore(
                snapshot_interval=3,
                snapshot_policy=AdaptiveSnapshotPolicy(10**9),
            )
        )
        assert store.record("d.xml").dindex.snapshot_numbers() == [3, 6, 9, 12]


class TestStorageBytesReporting:
    def test_fixed_interval_accounting_unchanged(self):
        """E7's space comparison relies on these exact categories."""
        store = _populate(TemporalDocumentStore(snapshot_interval=4))
        stats = store.repository.storage_bytes()
        assert stats["total"] == (
            stats["current"] + stats["deltas"] + stats["snapshots"]
        )
        assert stats["snapshots"] > 0
        assert stats["snapshot_count"] == 3
        assert stats["snapshot_policy"] == "interval(4)"

    def test_adaptive_policy_reported(self):
        store = _populate(
            TemporalDocumentStore(
                snapshot_policy=AdaptiveSnapshotPolicy(300)
            )
        )
        stats = store.repository.storage_bytes()
        assert stats["snapshot_policy"] == "adaptive(300B)"
        assert stats["snapshot_count"] == len(
            store.record("d.xml").dindex.snapshot_numbers()
        )

    def test_no_policy_reported_as_none(self):
        store = _populate(TemporalDocumentStore())
        stats = store.repository.storage_bytes()
        assert stats["snapshot_policy"] == "none"
        assert stats["snapshot_count"] == 0
        assert stats["snapshots"] == 0
