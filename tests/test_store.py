"""Tests for the store facade and the repository beneath it."""

import pytest

from repro.clock import parse_date
from repro.errors import (
    DocumentDeletedError,
    NoSuchDocumentError,
    NoSuchVersionError,
    StorageError,
)
from repro.model.identifiers import TEID
from repro.storage import TemporalDocumentStore
from repro.workload import load_figure1
from repro.xmlcore import Path, parse

from tests.conftest import JAN_01, JAN_15, JAN_26, JAN_31


@pytest.fixture
def store():
    store = TemporalDocumentStore()
    load_figure1(store)
    return store


class TestCommitPaths:
    def test_put_assigns_doc_ids(self):
        store = TemporalDocumentStore()
        first = store.put("a.xml", "<a/>")
        second = store.put("b.xml", "<b/>")
        assert first != second
        assert store.name_of(first) == "a.xml"

    def test_put_rejects_duplicate_name(self, store):
        with pytest.raises(StorageError):
            store.put("guide.com", "<guide/>")

    def test_put_after_delete_creates_new_document(self):
        store = TemporalDocumentStore()
        old_id = store.put("d.xml", "<a/>")
        store.delete("d.xml")
        new_id = store.put("d.xml", "<a/>")
        assert new_id != old_id  # fresh identity, as the paper requires

    def test_update_requires_existing(self):
        store = TemporalDocumentStore()
        with pytest.raises(NoSuchDocumentError):
            store.update("ghost.xml", "<a/>")

    def test_update_rejects_stamped_trees(self, store):
        stamped = store.current("guide.com")
        with pytest.raises(StorageError):
            store.update("guide.com", stamped)

    def test_update_of_deleted_fails(self, store):
        store.delete("guide.com")
        with pytest.raises(DocumentDeletedError):
            store.update("guide.com", "<guide/>")

    def test_explicit_timestamps_must_advance(self, store):
        with pytest.raises(Exception):
            store.update("guide.com", "<guide/>", ts=JAN_01)

    def test_version_numbers_increase(self, store):
        number = store.update("guide.com", "<guide><r>x</r></guide>")
        assert number == 4


class TestReads:
    def test_current(self, store):
        tree = store.current("guide.com")
        prices = Path("restaurant/price").select(tree)
        assert [p.text for p in prices] == ["18"]

    def test_current_returns_private_copy(self, store):
        tree = store.current("guide.com")
        tree.find("restaurant").find("price").text = "999"
        assert store.current("guide.com").find("restaurant").find(
            "price"
        ).text == "18"

    def test_snapshot_figure1(self, store):
        jan26 = store.snapshot("guide.com", JAN_26)
        names = [n.text for n in Path("restaurant/name").select(jan26)]
        assert names == ["Napoli", "Akropolis"]

    def test_snapshot_before_creation(self, store):
        assert store.snapshot("guide.com", JAN_01 - 5) is None

    def test_snapshot_of_deleted_document(self, store):
        delete_ts = parse_date("05/02/2001")
        store.delete("guide.com", ts=delete_ts)
        assert store.snapshot("guide.com", delete_ts) is None
        assert store.snapshot("guide.com", JAN_26) is not None

    def test_version_by_number(self, store):
        v1 = store.version("guide.com", 1)
        assert len(Path("restaurant").select(v1)) == 1
        with pytest.raises(NoSuchVersionError):
            store.version("guide.com", 9)

    def test_current_of_deleted_raises(self, store):
        store.delete("guide.com")
        with pytest.raises(DocumentDeletedError):
            store.current("guide.com")

    def test_reconstruction_roundtrip_all_versions(self, store):
        # Every reconstructed version matches an independent parse.
        expected = {
            1: ["15"],
            2: ["15", "13"],
            3: ["18"],
        }
        for number, prices in expected.items():
            tree = store.version("guide.com", number)
            assert [
                p.text for p in Path("restaurant/price").select(tree)
            ] == prices


class TestIdentityAcrossVersions:
    def test_napoli_keeps_xid(self, store):
        v1 = store.version("guide.com", 1)
        v3 = store.version("guide.com", 3)
        napoli_v1 = Path("restaurant").first(v1)
        napoli_v3 = Path("restaurant").first(v3)
        assert napoli_v1.xid == napoli_v3.xid

    def test_subtree_resolution(self, store):
        v2 = store.version("guide.com", 2)
        akropolis = Path("restaurant").select(v2)[1]
        teid = TEID(store.doc_id("guide.com"), akropolis.xid, JAN_26)
        subtree = store.subtree(teid)
        assert subtree.find("name").text == "Akropolis"

    def test_subtree_absent_when_element_gone(self, store):
        v2 = store.version("guide.com", 2)
        akropolis = Path("restaurant").select(v2)[1]
        teid = TEID(store.doc_id("guide.com"), akropolis.xid, JAN_31)
        assert store.subtree(teid) is None

    def test_normalize_teid(self, store):
        doc_id = store.doc_id("guide.com")
        raw = TEID(doc_id, 1, JAN_26)
        assert store.normalize_teid(raw).timestamp == JAN_15
        assert store.normalize_teid(TEID(doc_id, 1, JAN_01 - 5)) is None

    def test_current_teid(self, store):
        doc_id = store.doc_id("guide.com")
        root_teid = store.current_teid("guide.com", 1)
        assert root_teid == TEID(doc_id, 1, JAN_31)
        assert store.current_teid("guide.com", 9999) is None


class TestSnapshotsAndReconstructionCost:
    def test_snapshot_interval_materializes(self):
        store = TemporalDocumentStore(snapshot_interval=2)
        store.put("d.xml", "<a><b>0</b></a>")
        for value in range(1, 6):
            store.update("d.xml", f"<a><b>{value}</b></a>")
        dindex = store.delta_index("d.xml")
        snapshot_numbers = [
            e.number for e in dindex.entries if e.has_snapshot
        ]
        assert snapshot_numbers == [2, 4, 6]

    def test_snapshots_reduce_delta_reads(self):
        def build(snapshot_interval):
            store = TemporalDocumentStore(
                snapshot_interval=snapshot_interval
            )
            store.put("d.xml", "<a><b>0</b></a>")
            for value in range(1, 10):
                store.update("d.xml", f"<a><b>{value}</b></a>")
            store.repository.delta_reads = 0
            store.version("d.xml", 1)
            return store.repository.delta_reads

        without = build(None)
        with_snapshots = build(3)
        assert without == 9
        assert with_snapshots < without

    def test_reconstruction_from_snapshot_correct(self):
        store = TemporalDocumentStore(snapshot_interval=2)
        sources = [f"<a><b>{v}</b></a>" for v in range(6)]
        store.put("d.xml", sources[0])
        for source in sources[1:]:
            store.update("d.xml", source)
        for number, source in enumerate(sources, start=1):
            assert store.version("d.xml", number).equals_deep(parse(source))


class TestObservers:
    def test_events_fired_in_order(self):
        events = []

        class Recorder:
            def document_committed(self, event):
                events.append((event.kind, event.version_number))

        store = TemporalDocumentStore()
        store.subscribe(Recorder())
        store.put("d.xml", "<a/>")
        store.update("d.xml", "<a><b/></a>")
        store.delete("d.xml")
        assert events == [("create", 1), ("update", 2), ("delete", 2)]

    def test_update_event_carries_script_and_roots(self):
        captured = {}

        class Recorder:
            def document_committed(self, event):
                if event.kind == "update":
                    captured.update(
                        script=event.script,
                        old=event.old_root,
                        new=event.root,
                    )

        store = TemporalDocumentStore()
        store.subscribe(Recorder())
        store.put("d.xml", "<a><b>1</b></a>")
        store.update("d.xml", "<a><b>2</b></a>")
        assert not captured["script"].is_empty
        assert captured["old"].find("b").text == "1"
        assert captured["new"].find("b").text == "2"


class TestSpaceAccounting:
    def test_storage_bytes_categories(self, store):
        stats = store.repository.storage_bytes()
        assert stats["current"] > 0
        assert stats["deltas"] > 0
        assert stats["total"] == (
            stats["current"] + stats["deltas"] + stats["snapshots"]
        )

    def test_documents_listing(self, store):
        assert store.documents() == ["guide.com"]
        store.delete("guide.com")
        assert store.documents() == []
        assert store.documents(include_deleted=True) == ["guide.com"]
