"""Tests for the stratum baseline: store, translator, native equivalence."""

import pytest

from repro import TemporalXMLDatabase
from repro.errors import (
    DocumentDeletedError,
    NoSuchDocumentError,
    StorageError,
)
from repro.stratum import (
    StratumQueryProcessor,
    StratumStore,
    UnsupportedInStratumError,
)
from repro.workload import load_figure1
from repro.xmlcore import Path

from tests.conftest import JAN_01, JAN_15, JAN_26, JAN_31


@pytest.fixture
def stratum():
    store = StratumStore()
    load_figure1(store)
    return store, StratumQueryProcessor(store)


class TestStratumStore:
    def test_stores_full_versions(self, stratum):
        store, _ = stratum
        doc = store.document("guide.com")
        assert [v.number for v in doc.versions] == [1, 2, 3]
        assert all(v.nbytes > 0 for v in doc.versions)

    def test_snapshot(self, stratum):
        store, _ = stratum
        tree = store.snapshot("guide.com", JAN_26)
        assert len(Path("restaurant").select(tree)) == 2
        assert store.snapshot("guide.com", JAN_01 - 5) is None

    def test_snapshot_costs_one_read(self, stratum):
        store, _ = stratum
        store.version_reads = 0
        store.snapshot("guide.com", JAN_26)
        assert store.version_reads == 1

    def test_all_versions(self, stratum):
        store, _ = stratum
        versions = store.all_versions("guide.com")
        assert [ts for ts, _tree in versions] == [JAN_01, JAN_15, JAN_31]

    def test_no_element_identity(self, stratum):
        # Stratum trees are unstamped: that is the whole point.
        store, _ = stratum
        tree = store.current("guide.com")
        assert all(n.xid is None for n in tree.iter())

    def test_delete_semantics(self, stratum):
        store, _ = stratum
        store.delete("guide.com", ts=JAN_31 + 100)
        assert store.snapshot("guide.com", JAN_31 + 200) is None
        assert store.snapshot("guide.com", JAN_26) is not None
        with pytest.raises(DocumentDeletedError):
            store.current("guide.com")

    def test_duplicate_and_missing(self, stratum):
        store, _ = stratum
        with pytest.raises(StorageError):
            store.put("guide.com", "<guide/>")
        with pytest.raises(NoSuchDocumentError):
            store.snapshot("ghost", JAN_01)

    def test_space_grows_with_every_version(self, stratum):
        store, _ = stratum
        total = store.storage_bytes()["total"]
        doc = store.document("guide.com")
        assert total == sum(v.nbytes for v in doc.versions)


class TestTranslator:
    def test_q1(self, stratum):
        _, processor = stratum
        result = processor.execute(
            'SELECT R FROM doc("guide.com")[26/01/2001]/restaurant R'
        )
        assert len(result) == 2

    def test_q2(self, stratum):
        _, processor = stratum
        result = processor.execute(
            'SELECT SUM(R) FROM doc("guide.com")[26/01/2001]/restaurant R'
        )
        assert result.scalar() == 2

    def test_q3(self, stratum):
        _, processor = stratum
        result = processor.execute(
            'SELECT TIME(R), R/price '
            'FROM doc("guide.com")[EVERY]/restaurant R '
            'WHERE R/name="Napoli"'
        )
        assert [int(r["TIME(R)"]) for r in result] == [JAN_01, JAN_15, JAN_31]

    def test_every_reads_all_versions(self, stratum):
        store, processor = stratum
        store.version_reads = 0
        processor.execute(
            'SELECT COUNT(R) FROM doc("guide.com")[EVERY]/restaurant R'
        )
        assert store.version_reads == 3

    def test_untranslatable_functions(self, stratum):
        _, processor = stratum
        for bad in (
            'SELECT PREVIOUS(R) FROM doc("guide.com")/restaurant R',
            'SELECT CURRENT(R) FROM doc("guide.com")/restaurant R',
            'SELECT R FROM doc("guide.com")/restaurant R '
            "WHERE CREATE TIME(R) > 01/01/2001",
            'SELECT DIFF(R, R) FROM doc("guide.com")/restaurant R',
        ):
            with pytest.raises(UnsupportedInStratumError):
                processor.execute(bad)

    def test_identity_equality_untranslatable(self, stratum):
        _, processor = stratum
        with pytest.raises(UnsupportedInStratumError):
            processor.execute(
                'SELECT R1 FROM doc("guide.com")[01/01/2001]/restaurant R1, '
                'doc("guide.com")/restaurant R2 WHERE R1 == R2'
            )

    def test_distinct_and_similarity(self, stratum):
        _, processor = stratum
        result = processor.execute(
            'SELECT DISTINCT R/name FROM doc("guide.com")[EVERY]/restaurant R'
        )
        assert len(result) == 2
        result = processor.execute(
            'SELECT R2/price FROM doc("guide.com")[01/01/2001]/restaurant R1, '
            'doc("guide.com")[31/01/2001]/restaurant R2 WHERE R1 ~ R2'
        )
        assert len(result) == 1


class TestNativeEquivalence:
    """Stratum and native engines must agree on translatable queries."""

    QUERIES = (
        'SELECT R/name FROM doc("guide.com")[26/01/2001]/restaurant R',
        'SELECT SUM(R) FROM doc("guide.com")[15/01/2001]/restaurant R',
        'SELECT TIME(R), R/price FROM doc("guide.com")[EVERY]/restaurant R '
        'WHERE R/name="Napoli"',
        'SELECT R/name FROM doc("guide.com")[26/01/2001]/restaurant R '
        "WHERE R/price < 14",
        'SELECT DISTINCT R/name FROM doc("guide.com")[EVERY]/restaurant R',
        'SELECT P FROM doc("guide.com")[26/01/2001]//price P',
    )

    @pytest.mark.parametrize("query", QUERIES)
    def test_same_results(self, stratum, query):
        _, processor = stratum
        native = TemporalXMLDatabase()
        load_figure1(native)
        assert str(processor.execute(query)) == str(native.query(query))


class TestStratumDoctime:
    """DOCTIME is content-derived, so the stratum *can* translate it —
    unlike the identity/navigation functions."""

    def test_doctime_agrees_with_native(self):
        from repro.clock import parse_date

        native = TemporalXMLDatabase()
        stratum_store = StratumStore()
        for target in (native, stratum_store):
            target.put(
                "n.xml",
                "<news><pubdate>10/01/2001</pubdate><h>x</h></news>",
                ts=parse_date("12/01/2001"),
            )
        processor = StratumQueryProcessor(stratum_store)
        query = 'SELECT DOCTIME(N) FROM doc("n.xml") N WHERE DOCTIME(N) < TIME(N)'
        assert str(processor.execute(query)) == str(native.query(query))
