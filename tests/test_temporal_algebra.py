"""Sequenced temporal algebra surfaced in TXQL (ROADMAP item 4).

Four layers of coverage:

* unit tests for the calendar-bucket helpers (``bucket_floor`` /
  ``bucket_next`` / ``bucket_spans``) and the :class:`Coalesce` /
  :class:`GroupedAggregate` operators in isolation;
* Figure 1 end-to-end TXQL: ``SELECT COALESCE``, ``OVERLAPS`` joins,
  ``GROUP BY`` time buckets, and ``[EVERY WITHIN n UNIT]`` windows;
* edge cases the paper's sentinels make interesting — ``UNTIL_CHANGED``
  open intervals through COALESCE and OVERLAPS, adjacent closed-open
  buckets at month boundaries, interval-less join rows, and the
  interaction of ``pinned_now`` snapshots with NOW-relative windows;
* a randomized equivalence suite: TXQL output must be **byte-identical**
  to pipelines hand-composed from ``operators/relational.py`` over the
  raw delta index, with the optimizer on *and* off.
"""

import random

import pytest

from repro.clock import (
    BEFORE_TIME,
    SECONDS_PER_DAY,
    UNTIL_CHANGED,
    Interval,
    bucket_floor,
    bucket_next,
    bucket_spans,
    format_timestamp,
    parse_date,
)
from repro.equality.value import coerce_scalar
from repro.errors import QueryPlanError
from repro.index import LifetimeIndex, TemporalFullTextIndex
from repro.model.identifiers import TEID
from repro.operators.relational import (
    INTERVAL_KEY,
    Coalesce,
    GroupedAggregate,
    TemporalJoin,
)
from repro.query import QueryEngine, QueryOptions
from repro.query.executor import ResultSet
from repro.query.values import BoundElement, TimestampValue
from repro.storage import TemporalDocumentStore
from repro.workload import RestaurantGuideGenerator, load_figure1
from repro.xmlcore.node import Element
from repro.xmlcore.path import Path

START = parse_date("01/01/2001")
JAN_01 = parse_date("01/01/2001")
JAN_15 = parse_date("15/01/2001")
JAN_31 = parse_date("31/01/2001")


# -- bucket helpers ------------------------------------------------------------


class TestBucketHelpers:
    def test_floor_day_month_year(self):
        ts = parse_date("15/02/2001") + 3600
        assert bucket_floor(ts, "DAY") == parse_date("15/02/2001")
        assert bucket_floor(ts, "MONTH") == parse_date("01/02/2001")
        assert bucket_floor(ts, "YEAR") == parse_date("01/01/2001")

    def test_floor_is_idempotent(self):
        ts = parse_date("23/07/2003") + 12345
        for unit in ("DAY", "WEEK", "MONTH", "YEAR"):
            floor = bucket_floor(ts, unit)
            assert bucket_floor(floor, unit) == floor
            assert floor <= ts < bucket_next(floor, unit)

    def test_next_rolls_over_year_boundary(self):
        december = bucket_floor(parse_date("05/12/2001"), "MONTH")
        assert bucket_next(december, "MONTH") == parse_date("01/01/2002")
        year = bucket_floor(parse_date("05/12/2001"), "YEAR")
        assert bucket_next(year, "YEAR") == parse_date("01/01/2002")

    def test_spans_are_adjacent_and_cover_the_range(self):
        start = parse_date("15/01/2001")
        end = parse_date("20/03/2001")
        spans = list(bucket_spans(start, end, "MONTH"))
        assert [s for s, _e in spans] == [
            parse_date("01/01/2001"),
            parse_date("01/02/2001"),
            parse_date("01/03/2001"),
        ]
        assert spans[0][0] <= start < spans[0][1]
        assert spans[-1][0] < end <= spans[-1][1]
        for (_s1, end1), (start2, _e2) in zip(spans, spans[1:]):
            assert end1 == start2  # closed-open adjacency, no gap, no overlap

    def test_spans_empty_range_yields_nothing(self):
        ts = parse_date("15/01/2001")
        assert list(bucket_spans(ts, ts, "MONTH")) == []
        assert list(bucket_spans(ts, ts - 1, "DAY")) == []


# -- Coalesce operator ---------------------------------------------------------


class TestCoalesceOperator:
    def test_merges_adjacent_and_overlapping_intervals(self):
        rows = [
            {"v": 1, INTERVAL_KEY: Interval(10, 20)},
            {"v": 1, INTERVAL_KEY: Interval(20, 30)},
            {"v": 2, INTERVAL_KEY: Interval(30, 40)},
        ]
        assert list(Coalesce(rows)) == [
            {"v": 1, INTERVAL_KEY: Interval(10, 30)},
            {"v": 2, INTERVAL_KEY: Interval(30, 40)},
        ]

    def test_disjoint_intervals_stay_separate(self):
        rows = [
            {"v": 1, INTERVAL_KEY: Interval(10, 20)},
            {"v": 1, INTERVAL_KEY: Interval(40, 50)},
        ]
        assert list(Coalesce(rows)) == rows

    def test_interval_less_rows_keep_multiplicity(self):
        # Regression: bare rows used to collapse into one per group.
        rows = [{"v": 1}, {"v": 1}, {"v": 1}, {"v": 2}]
        assert list(Coalesce(rows)) == [{"v": 1}] * 3 + [{"v": 2}]

    def test_mixed_group_emits_bare_rows_before_merged(self):
        rows = [
            {"v": 1, INTERVAL_KEY: Interval(10, 20)},
            {"v": 1},
            {"v": 1, INTERVAL_KEY: Interval(40, 50)},
        ]
        # The bare copy must not inherit the first-seen row's interval.
        assert list(Coalesce(rows)) == [
            {"v": 1},
            {"v": 1, INTERVAL_KEY: Interval(10, 20)},
            {"v": 1, INTERVAL_KEY: Interval(40, 50)},
        ]

    def test_until_changed_merges_into_open_interval(self):
        rows = [
            {"v": 1, INTERVAL_KEY: Interval(10, 20)},
            {"v": 1, INTERVAL_KEY: Interval(20, UNTIL_CHANGED)},
        ]
        (merged,) = list(Coalesce(rows))
        assert merged[INTERVAL_KEY] == Interval(10, UNTIL_CHANGED)
        assert merged[INTERVAL_KEY].is_current


# -- GroupedAggregate operator -------------------------------------------------


class TestGroupedAggregateOperator:
    def test_groups_and_emits_sorted_by_key(self):
        rows = [{"k": "b", "x": 2}, {"k": "a", "x": 1}, {"k": "b", "x": 4}]
        out = list(
            GroupedAggregate(
                rows,
                {"k": lambda r: r["k"]},
                {"n": ("count", None), "s": ("sum", lambda r: [r["x"]])},
            )
        )
        assert out == [
            {"k": "a", "n": 1, "s": 1},
            {"k": "b", "n": 2, "s": 6},
        ]

    def test_multi_valued_key_contributes_once_per_value(self):
        rows = [{"k": ["a", "b"], "x": 5}, {"k": ["b"], "x": 2}]
        out = list(
            GroupedAggregate(
                rows,
                {"k": lambda r: r["k"]},
                {"s": ("sum", lambda r: [r["x"]])},
            )
        )
        assert out == [{"k": "a", "s": 5}, {"k": "b", "s": 7}]

    def test_empty_key_list_drops_the_row(self):
        rows = [{"k": [], "x": 5}, {"k": ["a"], "x": 1}]
        out = list(
            GroupedAggregate(
                rows,
                {"k": lambda r: r["k"]},
                {"s": ("sum", lambda r: [r["x"]])},
            )
        )
        assert out == [{"k": "a", "s": 1}]

    def test_distinct_key_dedups_within_group(self):
        rows = [
            {"k": "a", "x": 1},
            {"k": "a", "x": 1},
            {"k": "a", "x": 2},
            {"k": "b", "x": 1},
        ]
        out = list(
            GroupedAggregate(
                rows,
                {"k": lambda r: r["k"]},
                {"n": ("count", lambda r: [1])},
                distinct_key=lambda r: r["x"],
            )
        )
        assert out == [{"k": "a", "n": 2}, {"k": "b", "n": 1}]

    def test_unknown_aggregate_kind_rejected(self):
        with pytest.raises(ValueError):
            GroupedAggregate([], {}, {"bad": ("median", None)})


# -- Figure 1 end-to-end -------------------------------------------------------


def _texts(result, column):
    return [
        text
        for row in result
        for text in (
            [v.node.text_content() for v in row[column]]
            if isinstance(row[column], list)
            else [str(row[column])]
        )
    ]


@pytest.fixture
def figure1_engine(figure1_store):
    store, fti, lifetime, _ops = figure1_store
    return QueryEngine(store, fti=fti, lifetime=lifetime)


class TestFigure1Sequenced:
    def test_coalesce_merges_value_equivalent_versions(self, figure1_engine):
        result = figure1_engine.execute(
            'SELECT COALESCE R/name FROM doc("guide.com")[EVERY]/restaurant R'
        )
        assert result.columns == ["R/name", "VALID"]
        by_name = {}
        for row in result:
            name = row["R/name"][0].node.text_content()
            by_name.setdefault(name, []).append(row["VALID"])
        # Napoli exists through all three versions: one maximal interval,
        # still current (UNTIL_CHANGED survives the merge and renders "UC").
        assert [str(i) for i in by_name["Napoli"]] == [
            "[01/01/2001, UC)"
        ]
        # Akropolis lives only in the middle version.
        assert [str(i) for i in by_name["Akropolis"]] == [
            "[15/01/2001, 31/01/2001)"
        ]

    def test_coalesce_splits_on_value_change(self, figure1_engine):
        result = figure1_engine.execute(
            'SELECT COALESCE R/price FROM doc("guide.com")[EVERY]/restaurant R'
            ' WHERE R/name = "Napoli"'
        )
        intervals = [str(row["VALID"]) for row in result]
        # Napoli's price holds across the first two versions (those
        # intervals merge) and changes in the third (a fresh open row).
        assert intervals == ["[01/01/2001, 31/01/2001)", "[31/01/2001, UC)"]

    def test_overlaps_join_requires_interval_intersection(
        self, figure1_engine
    ):
        result = figure1_engine.execute(
            'SELECT R/price, S/price FROM doc("guide.com")[EVERY]/restaurant R, '
            'doc("guide.com")[EVERY]/restaurant S '
            'WHERE R/name = "Napoli" AND S/name = "Akropolis" '
            "AND R OVERLAPS S"
        )
        # Akropolis is valid [15/01, 31/01) only; of Napoli's three
        # versions exactly one overlaps it.
        assert len(result) == 1
        assert _texts(result, "R/price") == ["15"]
        assert _texts(result, "S/price") == ["13"]

    def test_overlaps_with_open_intervals_is_true(self, figure1_engine):
        # Both current versions run to UNTIL_CHANGED: open intervals overlap.
        result = figure1_engine.execute(
            'SELECT R/name, S/name FROM doc("guide.com")[EVERY]/restaurant R, '
            'doc("guide.com")[EVERY]/restaurant S '
            "WHERE R OVERLAPS S AND TIME(R) = 31/01/2001 "
            "AND TIME(S) = 31/01/2001"
        )
        assert len(result) == 1
        assert _texts(result, "R/name") == ["Napoli"]

    def test_overlaps_rejects_non_variable_operand(self, figure1_engine):
        with pytest.raises(QueryPlanError):
            figure1_engine.execute(
                'SELECT R FROM doc("guide.com")[EVERY]/restaurant R, '
                'doc("guide.com")[EVERY]/restaurant S '
                "WHERE R OVERLAPS S/name"
            )

    def test_group_by_month_buckets_with_pin(self, figure1_engine):
        figure1_engine.pinned_now = JAN_31
        result = figure1_engine.execute(
            'SELECT MONTH(R), COUNT(R) FROM doc("guide.com")'
            "[EVERY]/restaurant R GROUP BY MONTH(R)"
        )
        assert result.columns == ["MONTH(R)", "COUNT(R)"]
        # All validity clipped at the pin: everything lands in January.
        assert len(result) == 1
        row = result.rows[0]
        assert str(row["MONTH(R)"]) == "01/01/2001"
        assert row["COUNT(R)"] == 4  # 3 Napoli versions + 1 Akropolis

    def test_group_by_name_counts_versions(self, figure1_engine):
        result = figure1_engine.execute(
            'SELECT R/name, COUNT(R) FROM doc("guide.com")[EVERY]/restaurant R '
            "GROUP BY R/name"
        )
        # Multi-valued grouping keys expand: each output row carries the
        # single key value its group was formed over.
        rows = {
            row["R/name"].node.text_content(): row["COUNT(R)"]
            for row in result
        }
        assert rows == {"Akropolis": 1, "Napoli": 3}

    def test_distinct_count_applies_before_aggregation(self, figure1_engine):
        plain = figure1_engine.execute(
            'SELECT COUNT(R/name) FROM doc("guide.com")[EVERY]/restaurant R'
        )
        distinct = figure1_engine.execute(
            'SELECT DISTINCT COUNT(R/name) FROM '
            'doc("guide.com")[EVERY]/restaurant R'
        )
        assert plain.scalar() == 4
        assert distinct.scalar() == 2  # two distinct names across history

    def test_every_within_restricts_to_recent_versions(self, figure1_engine):
        figure1_engine.pinned_now = JAN_31
        recent = figure1_engine.execute(
            'SELECT TIME(R) FROM doc("guide.com")'
            "[EVERY WITHIN 10 DAYS]/restaurant R"
        )
        # Only versions whose validity intersects [21/01, 31/01]: the
        # middle versions (still valid on the 21st) and the new current one.
        assert sorted(str(v) for v in recent.scalars()) == [
            "15/01/2001",
            "15/01/2001",
            "31/01/2001",
        ]

    def test_every_within_tracks_pinned_now(self, figure1_engine):
        figure1_engine.pinned_now = JAN_15
        result = figure1_engine.execute(
            'SELECT TIME(R) FROM doc("guide.com")'
            "[EVERY WITHIN 7 DAYS]/restaurant R"
        )
        # As of the pin, the 31/01 version does not exist yet; the window
        # [08/01, 15/01] catches v1 (valid through the 15th) and v2.
        assert sorted(str(v) for v in result.scalars()) == [
            "01/01/2001",
            "15/01/2001",
            "15/01/2001",
        ]

    def test_coalesce_with_aggregate_rejected(self, figure1_engine):
        from repro.query.parser import QuerySyntaxError

        with pytest.raises((QueryPlanError, QuerySyntaxError)):
            figure1_engine.execute(
                'SELECT COALESCE COUNT(R) FROM doc("guide.com")'
                "[EVERY]/restaurant R"
            )


# -- month boundaries and interval-less rows -----------------------------------


def _restaurant_guide(price):
    guide = Element("guide")
    restaurant = Element("restaurant")
    name = Element("name")
    name.text = "Rex"
    tag = Element("price")
    tag.text = str(price)
    restaurant.append(name)
    restaurant.append(tag)
    guide.append(restaurant)
    return guide


@pytest.fixture
def boundary_engine():
    """One restaurant, versions straddling the Jan/Feb month boundary."""
    store = TemporalDocumentStore()
    fti = store.subscribe(TemporalFullTextIndex())
    store.put("g.com", _restaurant_guide(10), ts=parse_date("15/01/2001"))
    store.update("g.com", _restaurant_guide(12), ts=parse_date("15/02/2001"))
    store.update("g.com", _restaurant_guide(14), ts=parse_date("20/02/2001"))
    engine = QueryEngine(store, fti=fti)
    engine.pinned_now = parse_date("25/02/2001")
    return engine


class TestMonthBoundaries:
    def test_version_spanning_boundary_lands_in_both_buckets(
        self, boundary_engine
    ):
        result = boundary_engine.execute(
            'SELECT MONTH(R), COUNT(R) FROM doc("g.com")[EVERY]/restaurant R '
            "GROUP BY MONTH(R)"
        )
        rows = {
            str(row["MONTH(R)"]): row["COUNT(R)"] for row in result
        }
        # v1 [15/01, 15/02) straddles the boundary: it contributes to both
        # adjacent closed-open buckets.  v2 and v3 are February-only.
        assert rows == {"01/01/2001": 1, "01/02/2001": 3}

    def test_bucket_keys_are_adjacent_closed_open(self, boundary_engine):
        result = boundary_engine.execute(
            'SELECT MONTH(R), AVG(R/price) FROM doc("g.com")'
            "[EVERY]/restaurant R GROUP BY MONTH(R)"
        )
        keys = [int(row["MONTH(R)"]) for row in result.rows]
        assert keys == sorted(keys)
        assert bucket_next(keys[0], "MONTH") == keys[1]
        averages = [row["AVG(R/price)"] for row in result.rows]
        assert averages == [10, (10 + 12 + 14) / 3]

    def test_version_ending_exactly_on_boundary_stays_out(
        self, boundary_engine
    ):
        # v1's validity ends exactly at 15/02; a DAY bucket starting there
        # must not include it (half-open semantics).
        result = boundary_engine.execute(
            'SELECT DAY(R), COUNT(R) FROM doc("g.com")[EVERY]/restaurant R '
            "WHERE TIME(R) = 15/01/2001 GROUP BY DAY(R)"
        )
        days = [str(row["DAY(R)"]) for row in result]
        assert days[0] == "15/01/2001"
        assert days[-1] == "14/02/2001"
        assert "15/02/2001" not in days
        assert len(days) == 31  # 15/01 .. 14/02 inclusive


class TestIntervalLessRows:
    def test_disjoint_join_row_coalesces_without_valid(self, figure1_engine):
        # Snapshot bindings at disjoint instants produce a joined row whose
        # intervals never intersect: COALESCE passes it through bare.
        result = figure1_engine.execute(
            'SELECT COALESCE R/name, S/name FROM '
            'doc("guide.com")[01/01/2001]/restaurant R, '
            'doc("guide.com")[31/01/2001]/restaurant S'
        )
        assert result.columns == ["R/name", "S/name", "VALID"]
        assert len(result) == 1
        assert result.rows[0]["VALID"] is None
        # Rendering: the VALID cell is empty, not "None".
        assert str(result).splitlines()[-1].rstrip().endswith("</name>")


# -- randomized equivalence against hand-composed pipelines --------------------


NOW_PIN = START + 40 * SECONDS_PER_DAY


def _collect_texts(tree, tag, out):
    for child in getattr(tree, "children", ()):
        if getattr(child, "tag", None) == tag:
            out.add(child.text_content().strip())
        _collect_texts(child, tag, out)


@pytest.fixture(scope="module")
def corpus():
    """Three independently evolving guides plus per-tag vocabularies."""
    store = TemporalDocumentStore()
    fti = store.subscribe(TemporalFullTextIndex())
    lifetime = store.subscribe(LifetimeIndex())
    vocab = {"name": set(), "price": set()}
    for i in range(3):
        generator = RestaurantGuideGenerator(
            n_restaurants=4, seed=100 + i, p_price_change=0.4,
            p_close=0.1, p_open=0.1, p_rename=0.1, p_reintroduce=0.1,
        )
        versions = generator.load_into(
            store, name=f"g{i}.com", count=8,
            start_ts=START + i * 10 * SECONDS_PER_DAY,
        )
        for _ts, tree in versions:
            for tag in vocab:
                _collect_texts(tree, tag, vocab[tag])
    return store, fti, lifetime, {tag: sorted(v) for tag, v in vocab.items()}


def _engine(corpus, **overrides):
    store, fti, lifetime, _vocab = corpus
    engine = QueryEngine(
        store, fti=fti, lifetime=lifetime, options=QueryOptions(**overrides)
    )
    engine.pinned_now = NOW_PIN  # freeze NOW so every run agrees on it
    return engine


def _every_rows(store, doc_name, path, var):
    """Hand-built [EVERY] binding rows in the planner's canonical order:
    one row per (document version, matching element), interval =
    [version timestamp, end of version)."""
    doc_id = store.doc_id(doc_name)
    dindex = store.delta_index(doc_id)
    compiled = Path(path)
    rows = []
    for entry in dindex.versions_in(BEFORE_TIME + 1, NOW_PIN + 1):
        tree = store.snapshot(doc_id, entry.timestamp)
        interval = Interval(entry.timestamp, dindex.end_of(entry))
        for node in compiled.select(tree):
            teid = TEID(doc_id, node.xid, entry.timestamp)
            rows.append(
                {
                    var: BoundElement(
                        store, teid, interval, tree=node
                    ),
                    INTERVAL_KEY: interval,
                }
            )
    rows.sort(
        key=lambda row: (
            row[var].teid.doc_id,
            row[var].teid.timestamp,
            row[var].teid.xid,
        )
    )
    return rows


def _name_is(var, target):
    def predicate(row):
        return any(
            v.node.text_content().strip() == target
            for v in row[var].select("name")
        )

    return predicate


def _price_contributions(row, var):
    out = []
    for value in row[var].select("price"):
        scalar = coerce_scalar(value.node)
        out.append(scalar if isinstance(scalar, (int, float)) else 1)
    return out


def _project(rows, columns):
    """Project while carrying each row's validity interval along."""
    for row in rows:
        out = {label: fn(row) for label, fn in columns.items()}
        interval = row.get(INTERVAL_KEY)
        if interval is not None:
            out[INTERVAL_KEY] = interval
        yield out


def _hand_coalesce(store, doc, target):
    rows = [
        row
        for row in _every_rows(store, doc, "restaurant", "R")
        if _name_is("R", target)(row)
    ]
    projected = _project(
        rows, {"R/name": lambda r: r["R"].select("name")}
    )
    out = []
    for merged in Coalesce(projected):
        merged["VALID"] = merged.pop(INTERVAL_KEY, None)
        out.append(merged)
    return ResultSet(["R/name", "VALID"], out)


def _hand_overlaps(store, left_doc, right_doc, left_name, right_name):
    left = [
        row
        for row in _every_rows(store, left_doc, "restaurant", "R")
        if _name_is("R", left_name)(row)
    ]
    right = [
        row
        for row in _every_rows(store, right_doc, "restaurant", "S")
        if _name_is("S", right_name)(row)
    ]
    columns = ["R/name", "TIME(R)", "TIME(S)"]
    out = [
        {
            "R/name": row["R"].select("name"),
            "TIME(R)": TimestampValue(row["R"].teid.timestamp),
            "TIME(S)": TimestampValue(row["S"].teid.timestamp),
        }
        for row in TemporalJoin(left, right)
    ]
    return ResultSet(columns, out)


def _hand_bucket_aggregate(store, doc, unit, kind):
    rows = _every_rows(store, doc, "restaurant", "R")
    key_label = f"{unit}(R)"
    agg_label = f"{kind}(R/price)"

    def bucket_key(row):
        interval = row[INTERVAL_KEY]
        end = min(interval.end, NOW_PIN + 1)
        return [
            TimestampValue(start)
            for start, _stop in bucket_spans(interval.start, end, unit)
        ]

    grouped = GroupedAggregate(
        rows,
        {key_label: bucket_key},
        {agg_label: (kind.lower(), lambda r: _price_contributions(r, "R"))},
    )
    columns = [key_label, agg_label]
    return ResultSet(
        columns, [{label: g[label] for label in columns} for g in grouped]
    )


def _hand_name_count(store, doc):
    rows = _every_rows(store, doc, "restaurant", "R")
    grouped = GroupedAggregate(
        rows,
        {"R/name": lambda r: r["R"].select("name")},
        {"COUNT(R)": ("count", lambda r: [1])},
    )
    columns = ["R/name", "COUNT(R)"]
    return ResultSet(
        columns, [{label: g[label] for label in columns} for g in grouped]
    )


def _hand_within(store, doc, days, target):
    window = Interval(NOW_PIN - days * SECONDS_PER_DAY, NOW_PIN + 1)
    rows = [
        row
        for row in _every_rows(store, doc, "restaurant", "R")
        if row[INTERVAL_KEY].overlaps(window)
        and _name_is("R", target)(row)
    ]
    out = [
        {
            "R/name": row["R"].select("name"),
            "TIME(R)": TimestampValue(row["R"].teid.timestamp),
        }
        for row in rows
    ]
    return ResultSet(["R/name", "TIME(R)"], out)


class TestHandPipelineEquivalence:
    """TXQL output must be byte-identical to relational.py pipelines,
    with the optimizer on and off."""

    def _check(self, corpus, query, hand):
        expected = str(hand)
        on = _engine(corpus)
        off = _engine(corpus, use_optimizer=False)
        assert str(on.execute(query)) == expected, query
        assert str(off.execute(query)) == expected, query

    def test_coalesce_matches_hand_pipeline(self, corpus):
        store, _fti, _lifetime, vocab = corpus
        rng = random.Random(17)
        for _ in range(6):
            doc = f"g{rng.randint(0, 2)}.com"
            target = rng.choice(vocab["name"])
            query = (
                f'SELECT COALESCE R/name FROM doc("{doc}")[EVERY]'
                f'/restaurant R WHERE R/name = "{target}"'
            )
            self._check(corpus, query, _hand_coalesce(store, doc, target))

    def test_overlaps_join_matches_hand_pipeline(self, corpus):
        store, _fti, _lifetime, vocab = corpus
        rng = random.Random(23)
        for _ in range(6):
            left_doc = f"g{rng.randint(0, 2)}.com"
            right_doc = f"g{rng.randint(0, 2)}.com"
            left_name = rng.choice(vocab["name"])
            right_name = rng.choice(vocab["name"])
            query = (
                f'SELECT R/name, TIME(R), TIME(S) FROM '
                f'doc("{left_doc}")[EVERY]/restaurant R, '
                f'doc("{right_doc}")[EVERY]/restaurant S '
                f'WHERE R/name = "{left_name}" AND S/name = "{right_name}" '
                f"AND R OVERLAPS S"
            )
            hand = _hand_overlaps(
                store, left_doc, right_doc, left_name, right_name
            )
            self._check(corpus, query, hand)

    def test_bucketed_aggregates_match_hand_pipeline(self, corpus):
        store, _fti, _lifetime, _vocab = corpus
        rng = random.Random(31)
        for _ in range(8):
            doc = f"g{rng.randint(0, 2)}.com"
            unit = rng.choice(("DAY", "WEEK", "MONTH", "YEAR"))
            kind = rng.choice(("AVG", "SUM", "COUNT", "MIN", "MAX"))
            query = (
                f'SELECT {unit}(R), {kind}(R/price) FROM doc("{doc}")'
                f"[EVERY]/restaurant R GROUP BY {unit}(R)"
            )
            hand = _hand_bucket_aggregate(store, doc, unit, kind)
            self._check(corpus, query, hand)

    def test_group_by_name_matches_hand_pipeline(self, corpus):
        store, _fti, _lifetime, _vocab = corpus
        for i in range(3):
            doc = f"g{i}.com"
            query = (
                f'SELECT R/name, COUNT(R) FROM doc("{doc}")'
                "[EVERY]/restaurant R GROUP BY R/name"
            )
            self._check(corpus, query, _hand_name_count(store, doc))

    def test_every_within_matches_hand_pipeline(self, corpus):
        store, _fti, _lifetime, vocab = corpus
        rng = random.Random(41)
        for _ in range(6):
            doc = f"g{rng.randint(0, 2)}.com"
            days = rng.choice((15, 25, 35, 45))
            target = rng.choice(vocab["name"])
            query = (
                f'SELECT R/name, TIME(R) FROM doc("{doc}")'
                f"[EVERY WITHIN {days} DAYS]/restaurant R "
                f'WHERE R/name = "{target}"'
            )
            hand = _hand_within(store, doc, days, target)
            self._check(corpus, query, hand)

    def test_rewriter_off_agrees_too(self, corpus):
        store, _fti, _lifetime, vocab = corpus
        target = vocab["name"][0]
        query = (
            'SELECT R/name, TIME(R) FROM doc("g0.com")'
            "[EVERY WITHIN 45 DAYS]/restaurant R "
            f'WHERE R/name = "{target}"'
        )
        expected = str(_hand_within(store, "g0.com", 45, target))
        for use_rewriter in (True, False):
            for use_optimizer in (True, False):
                engine = _engine(
                    corpus,
                    use_rewriter=use_rewriter,
                    use_optimizer=use_optimizer,
                )
                assert str(engine.execute(query)) == expected, (
                    use_rewriter,
                    use_optimizer,
                )
