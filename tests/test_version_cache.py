"""Tests for the reconstruction version cache (storage/cache.py).

Covers the satellite checklist: hit/miss counters, LRU eviction order,
invalidation on update/delete, cached-vs-uncached reconstruction equality
across the snapshot-interval option matrix, and that ``cache_size=0``
leaves the paper's delta-read accounting untouched.
"""

import pytest

from repro.storage import TemporalDocumentStore, VersionCache
from repro.workload import TDocGenerator
from repro.xmlcore import element, serialize

VERSIONS = 12


def _build(snapshot_interval=None, cache_size=0, versions=VERSIONS, seed=7):
    store = TemporalDocumentStore(
        snapshot_interval=snapshot_interval, cache_size=cache_size
    )
    trees = TDocGenerator(seed=seed).version_sequence("d.xml", versions)
    store.put("d.xml", trees[0])
    for tree in trees[1:]:
        store.update("d.xml", tree)
    return store


class TestVersionCacheUnit:
    def test_disabled_cache_is_inert(self):
        cache = VersionCache(0)
        assert not cache.enabled
        cache.store(1, 1, element("a"))
        assert len(cache) == 0
        assert cache.lookup(1, 1, 5) == (None, None)
        assert cache.stats.as_dict()["hits"] == 0
        assert cache.stats.misses == 0  # disabled: not even misses counted

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            VersionCache(-1)

    def test_hit_and_miss_counters(self):
        cache = VersionCache(4)
        assert cache.lookup(1, 1, 5) == (None, None)
        assert cache.stats.misses == 1
        cache.store(1, 3, element("a"))
        number, tree = cache.lookup(1, 1, 5)
        assert number == 3 and tree.tag == "a"
        assert cache.stats.hits == 1

    def test_lookup_prefers_nearest_at_or_after(self):
        cache = VersionCache(4)
        cache.store(1, 3, element("three"))
        cache.store(1, 8, element("eight"))
        number, tree = cache.lookup(1, 2, 10)
        assert number == 3 and tree.tag == "three"
        # Versions before the target are never usable as a backward start.
        cache.store(1, 1, element("one"))
        number, _tree = cache.lookup(1, 2, 10)
        assert number == 3

    def test_lookup_respects_max_start(self):
        cache = VersionCache(4)
        cache.store(1, 9, element("nine"))
        assert cache.lookup(1, 2, 5) == (None, None)  # snapshot at 5 is closer

    def test_copy_on_return_both_directions(self):
        cache = VersionCache(4)
        original = element("doc", element("child"))
        cache.store(1, 1, original)
        original.append(element("mutated-after-store"))
        _n, first = cache.lookup(1, 1, 1)
        assert first.find("mutated-after-store") is None
        first.append(element("mutated-after-lookup"))
        _n, second = cache.lookup(1, 1, 1)
        assert second.find("mutated-after-lookup") is None

    def test_lru_eviction_order(self):
        cache = VersionCache(2)
        cache.store(1, 1, element("a"))
        cache.store(1, 2, element("b"))
        cache.store(1, 3, element("c"))
        assert cache.keys() == [(1, 2), (1, 3)]
        assert cache.stats.evictions == 1
        # A hit refreshes recency: (1, 2) survives the next eviction.
        cache.lookup(1, 2, 2)
        cache.store(1, 4, element("d"))
        assert cache.keys() == [(1, 2), (1, 4)]

    def test_invalidate_drops_only_that_document(self):
        cache = VersionCache(8)
        cache.store(1, 1, element("a"))
        cache.store(1, 2, element("b"))
        cache.store(2, 1, element("c"))
        assert cache.invalidate(1) == 2
        assert cache.stats.invalidations == 2
        assert cache.keys() == [(2, 1)]
        assert cache.invalidate(99) == 0

    def test_clear(self):
        cache = VersionCache(8)
        cache.store(1, 1, element("a"))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.invalidations == 1


class TestRepositoryIntegration:
    def test_repeated_reconstruction_hits(self):
        store = _build(cache_size=8)
        stats = store.version_cache.stats
        store.version("d.xml", 3)
        assert stats.hits == 0 and stats.misses == 1
        store.repository.delta_reads = 0
        store.version("d.xml", 3)
        assert stats.hits == 1
        assert store.repository.delta_reads == 0  # exact hit: no chain walk

    def test_saved_delta_reads_accounting(self):
        store = _build(cache_size=8)
        store.version("d.xml", VERSIONS - 4)
        saved_before = store.version_cache.stats.saved_delta_reads
        store.version("d.xml", VERSIONS - 4)
        # The second call would have cost 4 delta reads uncached.
        assert store.version_cache.stats.saved_delta_reads == saved_before + 4

    def test_nearer_cached_version_shortens_chain(self):
        store = _build(cache_size=8)
        store.version("d.xml", 6)  # cold: walks from current
        store.repository.delta_reads = 0
        store.version("d.xml", 4)  # warm: starts from cached v6, not current
        assert store.repository.delta_reads == 2

    @pytest.mark.parametrize("interval", [None, 4, 8])
    def test_cached_equals_uncached_across_option_matrix(self, interval):
        cached = _build(snapshot_interval=interval, cache_size=6)
        uncached = _build(snapshot_interval=interval, cache_size=0)
        # Two passes so the second runs against a populated cache.
        for _pass in range(2):
            for number in range(1, VERSIONS + 1):
                assert serialize(cached.version("d.xml", number)) == serialize(
                    uncached.version("d.xml", number)
                )

    def test_invalidation_on_update(self):
        store = _build(cache_size=8)
        store.version("d.xml", 2)
        assert len(store.version_cache) > 0
        extra = TDocGenerator(seed=11).version_sequence("x", 2)[1]
        store.update("d.xml", extra)
        assert len(store.version_cache) == 0
        assert store.version_cache.stats.invalidations > 0
        # And the reconstruction after the commit is still correct.
        assert serialize(store.version("d.xml", VERSIONS + 1)) == serialize(
            store.current("d.xml")
        )

    def test_invalidation_on_delete(self):
        store = _build(cache_size=8)
        store.version("d.xml", 2)
        assert len(store.version_cache) > 0
        store.delete("d.xml")
        assert len(store.version_cache) == 0
        # History remains reconstructable after the delete.
        assert store.version("d.xml", 2) is not None

    def test_cache_size_zero_matches_seed_delta_reads(self):
        """The paper's E3 accounting: k-th version costs VERSIONS - k reads."""
        store = _build(cache_size=0)
        repo = store.repository
        for number in (1, 4, 9, VERSIONS):
            repo.delta_reads = 0
            store.version("d.xml", number)
            assert repo.delta_reads == VERSIONS - number
            # Repeating does not get cheaper: no cache, no memory.
            repo.delta_reads = 0
            store.version("d.xml", number)
            assert repo.delta_reads == VERSIONS - number
        assert store.version_cache.stats.as_dict() == {
            "hits": 0,
            "misses": 0,
            "hit_rate": 0.0,
            "evictions": 0,
            "invalidations": 0,
            "saved_delta_reads": 0,
        }

    def test_snapshot_still_wins_when_closer_than_cache(self):
        store = _build(snapshot_interval=4, cache_size=8)
        store.version("d.xml", 11)  # caches v11
        store.repository.delta_reads = 0
        store.repository.snapshot_reads = 0
        store.version("d.xml", 3)
        # Snapshot at v4 (1 delta away) beats cached v11 (8 deltas away).
        assert store.repository.snapshot_reads == 1
        assert store.repository.delta_reads == 1
