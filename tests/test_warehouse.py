"""Tests for the simulated web, crawler, and document-time extraction."""

import pytest

from repro.clock import SECONDS_PER_DAY, parse_date
from repro.storage import TemporalDocumentStore
from repro.warehouse import (
    Crawler,
    DocumentTimeIndex,
    SimulatedWeb,
    extract_document_time,
)
from repro.warehouse.crawler import round_robin_schedule
from repro.xmlcore import parse

T0 = parse_date("01/01/2001")
DAY = SECONDS_PER_DAY


@pytest.fixture
def web():
    web = SimulatedWeb()
    web.publish("a.com", T0, "<page><v>1</v></page>")
    web.publish("a.com", T0 + 2 * DAY, "<page><v>2</v></page>")
    web.publish("a.com", T0 + 4 * DAY, "<page><v>3</v></page>")
    web.publish("b.com", T0 + 1 * DAY, "<page><v>b</v></page>")
    web.publish("b.com", T0 + 3 * DAY, None)  # page disappears
    return web


class TestSimulatedWeb:
    def test_fetch_latest_state(self, web):
        assert "1" in web.fetch("a.com", T0)
        assert "2" in web.fetch("a.com", T0 + 3 * DAY)
        assert web.fetch("a.com", T0 - 1) is None

    def test_fetch_after_removal(self, web):
        assert web.fetch("b.com", T0 + 3 * DAY) is None

    def test_publish_order_enforced(self, web):
        with pytest.raises(ValueError):
            web.publish("a.com", T0, "<old/>")

    def test_states_in(self, web):
        states = web.states_in("a.com", T0, T0 + 3 * DAY)
        assert len(states) == 2


class TestCrawler:
    def test_crawl_outcomes(self, web):
        store = TemporalDocumentStore()
        crawler = Crawler(web, store)
        assert crawler.crawl("a.com", T0) == "created"
        assert crawler.crawl("a.com", T0 + DAY) == "unchanged"
        assert crawler.crawl("a.com", T0 + 2 * DAY) == "updated"
        assert crawler.crawl("b.com", T0 - 1) == "absent"

    def test_deletion_observed(self, web):
        store = TemporalDocumentStore()
        crawler = Crawler(web, store)
        crawler.crawl("b.com", T0 + DAY)
        assert crawler.crawl("b.com", T0 + 3 * DAY) == "deleted"
        assert store.delta_index("b.com").is_deleted

    def test_transaction_time_is_crawl_time(self, web):
        """The paper's warehouse caveat: stored time = retrieval time."""
        store = TemporalDocumentStore()
        crawler = Crawler(web, store)
        crawl_ts = T0 + DAY  # content was published at T0
        crawler.crawl("a.com", crawl_ts)
        assert store.delta_index("a.com").entry(1).timestamp == crawl_ts

    def test_missed_versions_reported(self, web):
        store = TemporalDocumentStore()
        crawler = Crawler(web, store)
        # Crawl a.com only twice, 4 days apart: v2 is never seen.
        report = crawler.run([(T0, "a.com"), (T0 + 4 * DAY, "a.com")])
        assert report.stored_versions == 2
        assert report.missed_states >= 1
        assert 0 < report.capture_ratio() < 1

    def test_round_robin_schedule(self):
        schedule = round_robin_schedule(["a", "b"], 0, 100, 25)
        assert schedule == [(0, "a"), (25, "b"), (50, "a"), (75, "b")]

    def test_dense_crawl_captures_everything(self, web):
        store = TemporalDocumentStore()
        crawler = Crawler(web, store)
        schedule = [(T0 + i * DAY // 2, "a.com") for i in range(12)]
        report = crawler.run(schedule)
        assert report.per_url["a.com"]["captured"] == 3
        assert report.missed_states == 0 or report.per_url["a.com"][
            "published"
        ] == report.per_url["a.com"]["captured"]


class TestDocumentTime:
    def test_extract_from_element(self):
        tree = parse("<news><pubdate>26/01/2001</pubdate><body>x</body></news>")
        assert extract_document_time(tree) == parse_date("26/01/2001")

    def test_extract_from_attribute(self):
        tree = parse('<news date="15/01/2001"><body>x</body></news>')
        assert extract_document_time(tree) == parse_date("15/01/2001")

    def test_missing_or_malformed(self):
        assert extract_document_time(parse("<a><b>x</b></a>")) is None
        assert extract_document_time(parse("<a><date>soon</date></a>")) is None

    def test_index_observer(self):
        store = TemporalDocumentStore()
        index = store.subscribe(DocumentTimeIndex())
        store.put(
            "news1.xml",
            "<news><pubdate>10/01/2001</pubdate></news>",
            ts=parse_date("12/01/2001"),
        )
        store.put(
            "news2.xml",
            "<news><pubdate>20/01/2001</pubdate></news>",
            ts=parse_date("22/01/2001"),
        )
        store.put("plain.xml", "<a/>", ts=parse_date("23/01/2001"))
        hits = index.versions_with_doctime_in(
            parse_date("05/01/2001"), parse_date("15/01/2001")
        )
        assert len(hits) == 1
        doc_id, version_ts, doc_time = hits[0]
        assert doc_time == parse_date("10/01/2001")
        assert version_ts == parse_date("12/01/2001")
        assert index.coverage() == pytest.approx(2 / 3)

    def test_document_time_vs_transaction_time(self):
        """Document time (posted) and transaction time (crawled) diverge."""
        store = TemporalDocumentStore()
        index = store.subscribe(DocumentTimeIndex())
        posted = parse_date("01/01/2001")
        crawled = parse_date("09/01/2001")
        store.put(
            "late.xml", "<news><pubdate>01/01/2001</pubdate></news>", ts=crawled
        )
        doc_id = store.doc_id("late.xml")
        assert index.document_time(doc_id, crawled) == posted
        # Snapshot by transaction time at the posting date: nothing stored yet.
        assert store.snapshot("late.xml", posted) is None
