"""Tests for the workload generators."""

import pytest

from repro.storage import TemporalDocumentStore
from repro.workload import (
    FIGURE1_DATES,
    RestaurantGuideGenerator,
    TDocGenerator,
    Vocabulary,
    build_collection,
    figure1_versions,
)
from repro.xmlcore import Path, parse


class TestVocabulary:
    def test_deterministic(self):
        first = Vocabulary(size=50, seed=3)
        second = Vocabulary(size=50, seed=3)
        assert [first.sample() for _ in range(20)] == [
            second.sample() for _ in range(20)
        ]

    def test_zipf_skew(self):
        vocab = Vocabulary(size=100, seed=1)
        samples = [vocab.sample() for _ in range(3000)]
        top = samples.count(vocab.common(1)[0])
        bottom = samples.count(vocab.rare(1)[0])
        assert top > bottom * 3

    def test_sample_text_bounds(self):
        vocab = Vocabulary(seed=2)
        words = vocab.sample_text(2, 4).split()
        assert 2 <= len(words) <= 4

    def test_size_validation(self):
        with pytest.raises(ValueError):
            Vocabulary(size=0)


class TestFigure1:
    def test_three_versions_on_paper_dates(self):
        versions = figure1_versions()
        assert [ts for ts, _src in versions] == list(FIGURE1_DATES)

    def test_exact_contents(self):
        versions = figure1_versions()
        trees = [parse(src) for _ts, src in versions]
        assert [
            [n.text for n in Path("restaurant/name").select(t)]
            for t in trees
        ] == [["Napoli"], ["Napoli", "Akropolis"], ["Napoli"]]
        assert [
            [p.text for p in Path("restaurant/price").select(t)]
            for t in trees
        ] == [["15"], ["15", "13"], ["18"]]


class TestRestaurantGenerator:
    def test_deterministic(self):
        one = RestaurantGuideGenerator(n_restaurants=5, seed=9)
        two = RestaurantGuideGenerator(n_restaurants=5, seed=9)
        from repro.xmlcore import serialize

        versions_one = one.versions(5)
        versions_two = two.versions(5)
        assert [serialize(t) for _ts, t in versions_one] == [
            serialize(t) for _ts, t in versions_two
        ]

    def test_ground_truth_tracks_prices(self):
        generator = RestaurantGuideGenerator(
            n_restaurants=6, seed=4, p_price_change=1.0, p_close=0,
            p_open=0, p_rename=0, p_reintroduce=0,
        )
        generator.versions(3)
        increased = generator.truth.price_increased(0, 2)
        states = generator.truth.states
        for identity in increased:
            by_version = {v: p for v, _n, p in states[identity]}
            assert by_version[2] > by_version[0]

    def test_reintroduction_tracked(self):
        generator = RestaurantGuideGenerator(
            n_restaurants=8, seed=11, p_reintroduce=0.5
        )
        generator.versions(6)
        assert generator.truth.reintroduced

    def test_load_into_store(self):
        store = TemporalDocumentStore()
        generator = RestaurantGuideGenerator(n_restaurants=4, seed=2)
        generator.load_into(store, count=4)
        assert len(store.delta_index("guide.com").entries) == 4


class TestTDocGenerator:
    def test_document_shape(self):
        generator = TDocGenerator(seed=5, depth=3)
        tree = generator.document("d1")
        assert tree.tag == "doc"
        assert tree.subtree_size() > 3

    def test_evolution_changes_content(self):
        from repro.xmlcore import serialize

        generator = TDocGenerator(seed=5, p_update=0.9)
        first = generator.document("d1")
        second = generator.evolve("d1")
        assert serialize(first) != serialize(second)

    def test_version_sequence_length(self):
        generator = TDocGenerator(seed=1)
        assert len(generator.version_sequence("d", 6)) == 6

    def test_documents_never_empty(self):
        generator = TDocGenerator(seed=3, p_delete=0.9, p_update=0, p_insert=0)
        generator.document("d")
        for _ in range(10):
            tree = generator.evolve("d")
            assert tree.children

    def test_build_collection(self):
        store = TemporalDocumentStore()
        names = build_collection(store, n_docs=3, versions_per_doc=4)
        assert len(names) == 3
        for name in names:
            dindex = store.delta_index(name)
            assert len(dindex.entries) == 4
            # All versions reconstructible.
            for number in range(1, 5):
                assert store.version(name, number) is not None
