"""Tests for the lazy per-tree XID index and the read paths that use it."""

import pytest

from repro.clock import BEFORE_TIME, UNTIL_CHANGED
from repro.model.identifiers import TEID, XIDAllocator
from repro.model.versioned import stamp_new_nodes
from repro.operators import DocHistory, ElementHistory
from repro.storage import TemporalDocumentStore
from repro.xmlcore import Element, parse, xid_index_stats


@pytest.fixture(autouse=True)
def _reset_stats():
    xid_index_stats.reset()
    yield
    xid_index_stats.reset()


def _stamped(xml):
    tree = parse(xml)
    stamp_new_nodes(tree, XIDAllocator(), 1)
    return tree


class TestXidIndex:
    def test_map_matches_full_scan(self):
        tree = _stamped("<g><r><n>X</n></r><r><n>Y</n></r></g>")
        index = tree.xid_index()
        expected = {node.xid: node for node in tree.iter()}
        assert index == expected

    def test_built_once_for_repeated_lookups(self):
        tree = _stamped("<g><r><n>X</n></r></g>")
        xid_index_stats.reset()
        first = tree.find_by_xid(2)
        second = tree.find_by_xid(3)
        assert first is not None and second is not None
        assert xid_index_stats.builds == 1
        assert xid_index_stats.lookups == 2

    def test_insert_invalidates(self):
        tree = _stamped("<g><r/></g>")
        tree.xid_index()
        extra = _stamped("<n>Z</n>")
        extra.xid = 99
        tree.find("r").append(extra)
        assert xid_index_stats.invalidations == 1
        assert tree.find_by_xid(99) is extra  # rebuilt map sees the insert

    def test_remove_invalidates(self):
        tree = _stamped("<g><r/></g>")
        victim = tree.find("r")
        gone_xid = victim.xid
        tree.xid_index()
        tree.remove(victim)
        assert tree.find_by_xid(gone_xid) is None

    def test_text_replacement_invalidates(self):
        tree = _stamped("<g><n>old</n></g>")
        node = tree.find("n")
        old_text_xid = node.children[0].xid
        tree.xid_index()
        node.text = "new"
        assert tree.find_by_xid(old_text_xid) is None

    def test_value_only_mutation_keeps_map(self):
        tree = _stamped("<g><n>old</n></g>")
        index = tree.xid_index()
        tree.find("n").set("attr", "v")
        tree.find("n").children[0].value = "new"
        assert tree.xid_index() is index  # still the same cached map

    def test_mutation_without_index_is_cheap_and_safe(self):
        tree = _stamped("<g><r/></g>")
        tree.find("r").append(Element("n"))
        assert xid_index_stats.invalidations == 0

    def test_copy_does_not_share_index(self):
        tree = _stamped("<g><r/></g>")
        tree.xid_index()
        dup = tree.copy()
        dup.remove(dup.find("r"))
        assert tree.find_by_xid(tree.find("r").xid) is not None

    def test_stamping_drops_stale_maps(self):
        tree = parse("<g><r/></g>")
        tree.xid_index()  # everything under key None
        stamp_new_nodes(tree, XIDAllocator(), 1)
        assert tree.find_by_xid(tree.find("r").xid) is tree.find("r")

    def test_deep_mutation_invalidates_root_map(self):
        tree = _stamped("<g><a><b><c/></b></a></g>")
        tree.xid_index()
        deep = tree.find("a").find("b")
        fresh = Element("d")
        fresh.xid = 77
        deep.append(fresh)
        assert tree.find_by_xid(77) is fresh


class TestStoreReadPaths:
    @pytest.fixture
    def store(self):
        store = TemporalDocumentStore()
        store.put("d.xml", "<g><r><n>X</n></r></g>")
        store.update("d.xml", "<g><r><n>X</n></r><r><n>Y</n></r></g>")
        return store

    def test_current_teid_reuses_index_across_probes(self, store):
        root = store.record("d.xml").current_root
        xids = [node.xid for node in root.iter() if node.is_element]
        xid_index_stats.reset()
        for xid in xids:
            assert store.current_teid("d.xml", xid) is not None
        assert xid_index_stats.builds == 1  # one build, then O(1) probes
        assert xid_index_stats.lookups == len(xids)
        assert store.current_teid("d.xml", 10_000) is None

    def test_subtree_resolves_without_full_scan(self, store):
        root = store.record("d.xml").current_root
        target = root.find("r").find("n")
        ts = store.delta_index("d.xml").current_ts()
        teid = TEID(store.doc_id("d.xml"), target.xid, ts)
        node = store.subtree(teid)
        assert node is not None and node.tag == "n"
        assert xid_index_stats.builds >= 1

    def test_element_history_copies_only_the_subtree(self, store):
        root = store.record("d.xml").current_root
        second = root.child_elements()[1]
        results = ElementHistory(
            store, store.eid("d.xml", second.xid), BEFORE_TIME + 1,
            UNTIL_CHANGED - 1,
        ).run()
        assert len(results) == 1
        _teid, subtree = results[0]
        assert subtree.find("n").text == "Y"
        assert subtree.parent is None  # detached copy, not a whole-tree alias

    def test_doc_history_teids_skips_tree_copies(self, store, monkeypatch):
        copies = {"count": 0}
        original_copy = Element.copy

        def counting_copy(self):
            copies["count"] += 1
            return original_copy(self)

        monkeypatch.setattr(Element, "copy", counting_copy)
        history = DocHistory(store, "d.xml", BEFORE_TIME + 1, UNTIL_CHANGED - 1)
        history.teids()
        teids_copies = copies["count"]
        copies["count"] = 0
        history.run()
        run_copies = copies["count"]
        # teids() still pays the read_current copy inside reconstruction,
        # but none of the per-version result copies that run() makes.
        assert teids_copies < run_copies

    def test_doc_history_results_unchanged(self, store):
        results = DocHistory(
            store, "d.xml", BEFORE_TIME + 1, UNTIL_CHANGED - 1
        ).run()
        assert [len(tree.child_elements()) for _t, tree in results] == [2, 1]
