"""Randomized differential test: xml vs cas backends must be equivalent.

The same seeded batched ingestion — with mid-run checkpoints and a full
close/reopen cycle, so each backend round-trips its own on-disk format —
must leave both databases observably identical: byte-identical archives,
equal FTI ``lookup_t`` results, equal reconstructions, and equal
temporal keyword-search rankings.
"""

import random

import pytest

from repro import TemporalXMLDatabase
from repro.clock import parse_date
from repro.index.relevance import TemporalKeywordScorer
from repro.storage.persistence import archive_bytes, build_archive
from repro.workload import BatchingWriter, TDocGenerator
from repro.xmlcore import serialize

START = parse_date("01/01/2001")


def _op_stream(seed, n_docs=6, rounds=9):
    """Seeded random ops (kind, name, tree, ts): round-robin evolution
    with random extra updates and occasional delete + re-create."""
    generator = TDocGenerator(seed=seed, p_update=0.3, p_insert=0.1,
                              p_delete=0.1)
    rng = random.Random(seed * 31 + 7)
    names = [f"d{i}.xml" for i in range(1, n_docs + 1)]
    alive = set()
    ops = []
    ts = START
    for _ in range(rounds):
        for name in names:
            if name not in alive:
                ops.append(("put", name, generator.document(name), ts))
                alive.add(name)
            elif rng.random() < 0.08:
                ops.append(("delete", name, None, ts))
                alive.discard(name)
            else:
                ops.append(("update", name, generator.evolve(name), ts))
            ts += 3600
    return ops, generator


def _build(tmp_path, storage, ops, batch_size=7):
    """Batched ingestion with a mid-run checkpoint and a reopen cycle."""
    directory = tmp_path / storage
    db = TemporalXMLDatabase.open(
        directory, durability="fsync", storage=storage, snapshot_interval=4
    )
    half = len(ops) // 2
    for chunk in (ops[:half], ops[half:]):
        with BatchingWriter(db.store, batch_size=batch_size) as writer:
            for kind, name, tree, ts in chunk:
                if kind == "delete":
                    writer.delete(name, ts=ts)
                else:
                    getattr(writer, kind)(name, tree.copy(), ts=ts)
        db.checkpoint()
        db.close()
        db = TemporalXMLDatabase.open(
            directory, durability="fsync", storage=storage,
            snapshot_interval=4,
        )
    return db


@pytest.mark.parametrize("seed", [3, 11])
def test_backends_are_observably_identical(tmp_path, seed):
    ops, _generator = _op_stream(seed)
    xml_db = _build(tmp_path, "xml", ops)
    cas_db = _build(tmp_path, "cas", ops)
    try:
        # Strongest check first: the logical store state is byte-identical.
        assert archive_bytes(build_archive(xml_db.store)) == archive_bytes(
            build_archive(cas_db.store)
        )

        # Reconstructions agree version by version.
        for record in xml_db.store.repository.records():
            for number in range(1, record.dindex.current_number + 1):
                assert serialize(
                    xml_db.store.version(record.doc_id, number)
                ) == serialize(cas_db.store.version(record.doc_id, number))

        # FTI lookup_t agrees at sampled instants for sampled words.
        instants = [START + i * 3600 * 5 for i in range(12)]
        words = ["w0001", "w0002", "w0005", "w0020", "section", "item"]
        for word in words:
            for ts in instants:
                xml_hits = sorted(
                    (p.doc_id, p.xid, p.start, p.end)
                    for p in xml_db.fti.lookup_t(word, ts)
                )
                cas_hits = sorted(
                    (p.doc_id, p.xid, p.start, p.end)
                    for p in cas_db.fti.lookup_t(word, ts)
                )
                assert xml_hits == cas_hits, (word, ts)

        # Ranked keyword search agrees, instant and windowed.
        xml_scorer = TemporalKeywordScorer(xml_db.fti)
        cas_scorer = TemporalKeywordScorer(cas_db.fti)
        end = xml_db.now()
        assert end == cas_db.now()
        for query in ("w0001", "w0002 item", "w0003 w0010 section"):
            assert xml_scorer.search_t(query, end) == cas_scorer.search_t(
                query, end
            )
            assert xml_scorer.search_window(
                query, START, end
            ) == cas_scorer.search_window(query, START, end)
    finally:
        xml_db.close()
        cas_db.close()
