"""Tests for the tree model."""

import pytest

from repro.errors import TemporalXMLError
from repro.xmlcore import Element, Text, element


class TestConstruction:
    def test_element_builder(self):
        tree = element(
            "restaurant", element("name", "Napoli"), element("price", "15")
        )
        assert tree.tag == "restaurant"
        assert [c.tag for c in tree.child_elements()] == ["name", "price"]
        assert tree.find("name").text == "Napoli"

    def test_invalid_tag(self):
        with pytest.raises(TemporalXMLError):
            Element("")
        with pytest.raises(TemporalXMLError):
            Element(None)

    def test_append_string_becomes_text(self):
        node = Element("p")
        node.append("hello")
        assert isinstance(node.children[0], Text)
        assert node.text == "hello"

    def test_insert_detaches_from_previous_parent(self):
        a = element("a", element("x"))
        b = Element("b")
        x = a.children[0]
        b.append(x)
        assert x.parent is b
        assert not a.children

    def test_cannot_insert_under_self(self):
        a = element("a", element("b"))
        b = a.children[0]
        with pytest.raises(TemporalXMLError):
            b.append(a)
        with pytest.raises(TemporalXMLError):
            a.append(a)

    def test_remove_non_child_raises(self):
        a = Element("a")
        with pytest.raises(TemporalXMLError):
            a.remove(Element("b"))


class TestNavigation:
    def test_root_ancestors_depth(self):
        tree = element("a", element("b", element("c")))
        c = tree.children[0].children[0]
        assert c.root() is tree
        assert [n.tag for n in c.ancestors()] == ["b", "a"]
        assert c.depth() == 2
        assert tree.depth() == 0

    def test_iter_preorder(self):
        tree = element("a", element("b", "t1"), element("c"))
        tags = [n.tag for n in tree.iter_elements()]
        assert tags == ["a", "b", "c"]

    def test_find_and_findall(self):
        tree = element("g", element("r"), element("r"), element("s"))
        assert tree.find("r") is tree.children[0]
        assert len(tree.findall("r")) == 2
        assert tree.find("missing") is None

    def test_index_in_parent(self):
        tree = element("a", element("b"), "text", element("c"))
        assert tree.children[2].index_in_parent() == 2
        with pytest.raises(TemporalXMLError):
            tree.index_in_parent()

    def test_subtree_size(self):
        tree = element("a", element("b", "t"), element("c"))
        assert tree.subtree_size() == 4


class TestContent:
    def test_text_property(self):
        node = element("p", "hello")
        assert node.text == "hello"
        node.text = "bye"
        assert node.text == "bye"
        node.text = None
        assert node.text == ""

    def test_text_content_recursive(self):
        tree = element("a", element("b", "x"), "y", element("c", "z"))
        assert tree.text_content() == "xyz" or tree.text_content() == "yxz"
        # Document order: b's text, then direct text, then c's text.
        assert tree.text_content() == "xyz"

    def test_attributes(self):
        node = Element("a", {"k": "v"})
        assert node.get("k") == "v"
        assert node.get("missing", "d") == "d"
        node.set("n", 5)
        assert node.attrib["n"] == "5"


class TestCopyAndEquality:
    def test_copy_is_deep_and_detached(self):
        tree = element("a", element("b", "t"))
        tree.xid = 1
        tree.children[0].xid = 2
        dup = tree.copy()
        assert dup.equals_deep(tree)
        assert dup.xid == 1 and dup.children[0].xid == 2
        assert dup.parent is None
        dup.children[0].text = "changed"
        assert tree.children[0].text == "t"

    def test_shallow_equality(self):
        a = element("r", element("x", "1"))
        a.text = "hi"
        b = element("r", element("y", "2"))
        b.text = "hi"
        assert a.equals_shallow(b)
        assert not a.equals_deep(b)

    def test_deep_equality_order_sensitive(self):
        a = element("g", element("x"), element("y"))
        b = element("g", element("y"), element("x"))
        assert not a.equals_deep(b)

    def test_deep_equality_attributes(self):
        a = Element("r", {"k": "1"})
        b = Element("r", {"k": "2"})
        assert not a.equals_deep(b)

    def test_text_equality(self):
        assert Text("a").equals_deep(Text("a"))
        assert not Text("a").equals_deep(Text("b"))
        assert not Text("a").equals_deep(Element("a"))
