"""Tests for the hand-written XML parser."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import XMLSyntaxError
from repro.xmlcore import parse, parse_fragment, serialize
from repro.xmlcore.node import Element, Text


class TestBasics:
    def test_simple_document(self):
        root = parse("<a><b>hi</b></a>")
        assert root.tag == "a"
        assert root.find("b").text == "hi"

    def test_self_closing(self):
        root = parse("<a><b/><c /></a>")
        assert [c.tag for c in root.child_elements()] == ["b", "c"]
        assert all(not c.children for c in root.child_elements())

    def test_attributes_both_quotes(self):
        root = parse("""<a x="1" y='two'/>""")
        assert root.attrib == {"x": "1", "y": "two"}

    def test_mixed_content(self):
        root = parse("<p>one<b>two</b>three</p>")
        kinds = [type(c).__name__ for c in root.children]
        assert kinds == ["Text", "Element", "Text"]
        assert root.text_content() == "onetwothree"

    def test_whitespace_only_text_dropped(self):
        root = parse("<a>\n  <b/>\n</a>")
        assert len(root.children) == 1

    def test_prolog_comments_pis_doctype(self):
        root = parse(
            """<?xml version="1.0"?>
            <!DOCTYPE guide SYSTEM "guide.dtd">
            <!-- a comment -->
            <?pi data?>
            <guide><!-- inner --><r/></guide>
            <!-- trailing -->"""
        )
        assert root.tag == "guide"
        assert len(root.child_elements()) == 1

    def test_cdata(self):
        root = parse("<a><![CDATA[<not-a-tag> & raw]]></a>")
        assert root.text == "<not-a-tag> & raw"


class TestEntities:
    def test_predefined(self):
        root = parse("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert root.text == "<>&'\""

    def test_numeric(self):
        root = parse("<a>&#65;&#x42;</a>")
        assert root.text == "AB"

    def test_in_attributes(self):
        root = parse('<a x="a&amp;b"/>')
        assert root.attrib["x"] == "a&b"

    def test_unknown_entity(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a>&nope;</a>")


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "just text",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a x=1/>",
            "<a x='1' x='2'/>",
            "<a>text</a><b/>",
            "<a><!-- -- --></a>",
            "<a attr='<'/>",
            "<1tag/>",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(XMLSyntaxError):
            parse(bad)

    def test_error_carries_location(self):
        try:
            parse("<a>\n<b></c></a>")
        except XMLSyntaxError as exc:
            assert exc.line == 2
        else:
            pytest.fail("expected XMLSyntaxError")


class TestFragment:
    def test_forest(self):
        roots = parse_fragment("<a/><b>x</b><c/>")
        assert [r.tag for r in roots] == ["a", "b", "c"]

    def test_empty(self):
        assert parse_fragment("") == []
        assert parse_fragment("   ") == []


# -- round-trip property -------------------------------------------------------

_tags = st.sampled_from(["a", "b", "c", "item", "name"])
_texts = st.text(
    alphabet=st.characters(
        codec="utf-8",
        categories=("Lu", "Ll", "Nd"),
    ),
    min_size=1,
    max_size=12,
)


def _trees(depth):
    if depth == 0:
        return st.builds(lambda t: t, _tags).map(Element)
    return st.builds(
        _build_element,
        _tags,
        st.dictionaries(_tags, _texts, max_size=2),
        st.lists(
            st.one_of(_trees(depth - 1), _texts.map(Text)), max_size=3
        ),
    )


def _build_element(tag, attrib, children):
    node = Element(tag, attrib)
    for child in children:
        node.append(child.copy() if child.parent is not None else child)
    return node


class TestRoundTrip:
    @given(_trees(3))
    def test_parse_serialize_roundtrip(self, tree):
        again = parse(serialize(tree))
        # Serialization merges adjacent text nodes; normalize both sides.
        assert _normalize(again).equals_deep(_normalize(tree))

    @given(_trees(2))
    def test_pretty_roundtrip(self, tree):
        again = parse(serialize(tree, indent=2))
        # Pretty-printing only inserts ignorable whitespace.
        assert _normalize(again).equals_deep(_normalize(tree))


def _normalize(tree):
    """Drop ignorable whitespace and merge adjacent text nodes."""
    dup = tree.copy()
    for node in list(dup.iter()):
        if not isinstance(node, Element):
            continue
        merged = []
        for child in node.children:
            if isinstance(child, Text):
                if not child.value.strip():
                    continue
                if merged and isinstance(merged[-1], Text):
                    merged[-1] = Text(merged[-1].value + child.value)
                    continue
            merged.append(child)
        node.children = merged
        for child in merged:
            child.parent = node
    return dup
