"""Tests for path expressions."""

import pytest

from repro.errors import PathSyntaxError
from repro.xmlcore import Path, element, parse, path_of


@pytest.fixture
def guide():
    return parse(
        """<guide>
             <restaurant><name>Napoli</name><price>15</price></restaurant>
             <restaurant><name>Roma</name>
               <menu><price>20</price></menu>
             </restaurant>
             <hotel><name>Plaza</name></hotel>
           </guide>"""
    )


class TestCompile:
    def test_simple_steps(self):
        path = Path("restaurant/name")
        assert [s.tag for s in path.steps] == ["restaurant", "name"]
        assert [s.axis for s in path.steps] == ["child", "child"]

    def test_descendant_axis(self):
        path = Path("restaurant//price")
        assert path.steps[1].axis == "descendant"

    def test_leading_descendant(self):
        path = Path("//price")
        assert path.steps[0].axis == "descendant"

    def test_leading_slash_is_relative(self):
        assert Path("/restaurant") == Path("restaurant")

    def test_empty_and_dot(self):
        assert Path("").is_empty
        assert Path(".").is_empty

    @pytest.mark.parametrize("bad", ["/", "a//", "a//'x'", "a/ /b", "1tag"])
    def test_rejects(self, bad):
        with pytest.raises(PathSyntaxError):
            Path(bad)

    def test_equality_and_hash(self):
        assert Path("a/b") == Path("a/b")
        assert hash(Path("a//b")) == hash(Path("a//b"))
        assert Path("a/b") != Path("a//b")


class TestSelect:
    def test_child_steps(self, guide):
        names = Path("restaurant/name").select(guide)
        assert [n.text for n in names] == ["Napoli", "Roma"]

    def test_descendant_step(self, guide):
        prices = Path("restaurant//price").select(guide)
        assert [p.text for p in prices] == ["15", "20"]

    def test_leading_descendant_finds_all(self, guide):
        assert len(Path("//name").select(guide)) == 3
        assert len(Path("//price").select(guide)) == 2

    def test_wildcard(self, guide):
        assert len(Path("*/name").select(guide)) == 3

    def test_empty_selects_context(self, guide):
        assert Path("").select(guide) == [guide]

    def test_no_match(self, guide):
        assert Path("restaurant/phone").select(guide) == []
        assert Path("restaurant/phone").first(guide) is None
        assert not Path("restaurant/phone").matches(guide)

    def test_forest_context(self, guide):
        restaurants = guide.findall("restaurant")
        names = Path("name").select(restaurants)
        assert [n.text for n in names] == ["Napoli", "Roma"]

    def test_no_duplicates_from_overlapping_descendants(self):
        tree = parse("<a><b><b><c/></b></b></a>")
        assert len(Path("//c").select(tree)) == 1


class TestPathOf:
    def test_tag_path(self, guide):
        price = Path("restaurant/menu/price").first(guide)
        assert path_of(price) == "guide/restaurant/menu/price"

    def test_root(self, guide):
        assert path_of(guide) == "guide"

    def test_text_node(self):
        tree = element("a", "hello")
        assert path_of(tree.children[0]) == "a"
