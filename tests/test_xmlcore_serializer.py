"""Tests for serialization."""

import pytest

from repro.errors import TemporalXMLError
from repro.xmlcore import element, parse, serialize
from repro.xmlcore.node import Element, Text
from repro.xmlcore.serializer import escape_attribute, escape_text


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attribute_escapes(self):
        assert escape_attribute('say "hi" & <go>') == (
            "say &quot;hi&quot; &amp; &lt;go>"
        )

    def test_escaped_roundtrip(self):
        tree = element("a", "x < y & z")
        tree.set("attr", 'quo"te')
        again = parse(serialize(tree))
        assert again.text == "x < y & z"
        assert again.attrib["attr"] == 'quo"te'


class TestShapes:
    def test_empty_element_self_closes(self):
        assert serialize(Element("a")) == "<a/>"

    def test_attributes(self):
        assert serialize(Element("a", {"x": "1"})) == '<a x="1"/>'

    def test_nested_compact(self):
        tree = element("a", element("b", "t"))
        assert serialize(tree) == "<a><b>t</b></a>"

    def test_text_node_alone(self):
        assert serialize(Text("hi & bye")) == "hi &amp; bye"

    def test_rejects_non_node(self):
        with pytest.raises(TemporalXMLError):
            serialize("not a node")


class TestPretty:
    def test_indents_element_content(self):
        tree = element("a", element("b"), element("c"))
        text = serialize(tree, indent=2)
        assert text == "<a>\n  <b/>\n  <c/>\n</a>"

    def test_does_not_indent_mixed_content(self):
        tree = parse("<p>one<b>two</b>three</p>")
        assert serialize(tree, indent=2) == "<p>one<b>two</b>three</p>"

    def test_pretty_parses_back(self):
        tree = element("g", element("r", element("n", "Napoli")))
        again = parse(serialize(tree, indent=4))
        assert again.find("r").find("n").text == "Napoli"


class TestXidDump:
    def test_xids_emitted_when_requested(self):
        tree = element("a")
        tree.xid = 42
        assert serialize(tree, xids=True) == '<a _xid="42"/>'
        assert serialize(tree) == "<a/>"
